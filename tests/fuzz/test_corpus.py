"""Replay every committed corpus entry through the full oracle.

``tests/fuzz/corpus/`` holds historically-tricky program shapes
(mid-trace traps, ret-mispredict stress, instruction-limit
demotion) plus any minimized divergence a fuzzing session commits:
each entry must diff clean across all four engines × both memory
models forever after.
"""

import os

import pytest

from repro.fuzz.minimize import load_corpus
from repro.fuzz.oracle import diff_engines, diff_minic
from repro.isa.assembler import assemble
from repro.machine.config import SafetyMode

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
ENTRIES = load_corpus(CORPUS_DIR)


def config_kw_of(meta: dict) -> dict:
    """Rebuild MachineConfig keywords from a JSON sidecar."""
    out = dict(meta.get("config") or {})
    if "mode" in out:
        out["mode"] = SafetyMode(out["mode"])
    return out


def test_corpus_is_committed():
    names = {name for name, _prog, _meta in ENTRIES}
    assert {"isa-mid-trace-trap", "isa-ret-mispredict",
            "isa-instruction-limit"} <= names


@pytest.mark.parametrize(
    "name,program,meta", ENTRIES,
    ids=[name for name, _p, _m in ENTRIES])
def test_corpus_entry_diffs_clean(name, program, meta):
    config_kw = config_kw_of(meta)
    if meta.get("level") == "minic":
        divergences = diff_minic(program, config_kw)
    else:
        divergences = diff_engines(assemble(program), config_kw)
    assert divergences == [], \
        "committed regression %s diverged again: %s" \
        % (name, [str(d) for d in divergences])
