"""Opt-in buffered JSONL event emitter.

Every event is one JSON object per line with an ``ev`` type field.
The emitter is *buffered*: ``emit`` appends a dict to an in-memory
list (no I/O, no serialization on the hot path) and ``flush`` writes
the whole run in **one** ``O_APPEND`` ``write(2)`` call — so several
harness worker processes can share a single JSONL file without
interleaving each other's lines mid-event.

The knob lives on :class:`~repro.machine.config.MachineConfig`:

* ``obs_events=None`` (default) — off, zero allocations, zero cost;
* ``obs_events="path/to/run.jsonl"`` — the CPU creates (and owns)
  an :class:`EventLog` appending to that path;
* ``obs_events=EventLog(...)`` — a shared log the caller owns and
  flushes (useful for in-memory inspection in tests: a pathless
  ``EventLog()`` just accumulates ``events``).

Event vocabulary (see ``docs/OBSERVABILITY.md`` for the full field
schema): ``run_start`` (manifest), ``run_end`` (result statistics +
phase seconds + engine stats), ``run_abort`` (trap/abort exits),
``trace_formed``, ``trace_profile`` (per-trace dispatch counts with
pc ranges), ``side_exit_profile`` (per-branch side-exit counts),
``demotions``, ``sweep_summary`` (harness cache statistics),
``fuzz_run`` (one fuzzed program's verdict), ``fuzz_divergence``
(one oracle mismatch), ``fuzz_summary`` (per-shard totals) — the
fuzz events are emitted by ``python -m repro.fuzz`` shards and
rendered by ``python -m repro.obs.report fuzz``.

The service dispatcher (``repro.service``) adds ``job_dispatch``
(job → worker assignment, with attempt number), ``job_requeue``
(a crashed worker's job going back on a queue), ``worker_warm``
(per-completed-job warm/cold flag with wall seconds) and
``service_status`` (the final counter snapshot at shutdown) —
rendered by ``python -m repro.obs.report service``.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, List, Optional


class EventLog:
    """Buffered JSONL sink; see the module docstring."""

    __slots__ = ("path", "events")

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self.events: List[dict] = []

    def emit(self, ev: str, **fields) -> None:
        """Buffer one event (no I/O until :meth:`flush`)."""
        record = {"ev": ev}
        record.update(fields)
        self.events.append(record)

    def emit_many(self, records) -> None:
        self.events.extend(records)

    def flush(self) -> None:
        """Append every buffered event to ``path`` in one write.

        A pathless log keeps its buffer (in-memory use); a pathed log
        clears the buffer only after the write succeeds.
        """
        if self.path is None or not self.events:
            return
        data = "".join(json.dumps(event, default=str) + "\n"
                       for event in self.events).encode("utf-8")
        fd = os.open(self.path,
                     os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, data)
        finally:
            os.close(fd)
        self.events.clear()


def read_events(path: str) -> Iterator[dict]:
    """Yield every event of a JSONL file, skipping malformed lines.

    Tolerating a torn final line keeps the report CLI usable on a
    file taken from a run that died mid-write.
    """
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except ValueError:
                continue


def split_runs(events) -> List[List[dict]]:
    """Group a flat event stream into per-run event lists.

    A run starts at ``run_start`` and collects everything until the
    next ``run_start``.  Events before the first ``run_start``
    (e.g. a bare ``sweep_summary``) form their own leading group.
    """
    runs: List[List[dict]] = []
    current: Optional[List[dict]] = None
    for event in events:
        if event.get("ev") == "run_start" or current is None:
            current = []
            runs.append(current)
        current.append(event)
    return runs


def run_label(run: List[dict]) -> str:
    """Human label of one run group (workload name when stamped)."""
    for event in run:
        if event.get("ev") == "run_start":
            manifest: Dict = event.get("manifest") or {}
            label = manifest.get("label") or ""
            engine = manifest.get("engine") or "?"
            mode = manifest.get("mode") or ""
            parts = [part for part in (label, engine, mode) if part]
            return "/".join(parts) if parts else "run"
    return "events"
