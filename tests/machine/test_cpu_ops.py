"""Per-instruction semantics of the core, checked against Python models."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import assemble
from repro.layout import MASK32, MAXINT, to_signed
from repro.machine import (
    CPU,
    AbortError,
    DivideByZeroError,
    InstructionLimitExceeded,
    InvalidCodePointerError,
    MachineConfig,
    MemoryFault,
)

CFG = MachineConfig.plain(timing=False)

i32 = st.integers(-2**31, 2**31 - 1)


def run_alu(mnem, a, b):
    """Execute one ALU op with operands in r1, r2; result in r3."""
    cpu = CPU(assemble("""
    main:
        mov r1, %d
        mov r2, %d
        %s r3, r1, r2
        halt 0
    """ % (a, b, mnem)), CFG)
    cpu.run()
    return cpu.regs.value[3]


class TestArithmetic:
    @given(a=i32, b=i32)
    def test_add_wraps(self, a, b):
        assert run_alu("add", a, b) == (a + b) & MASK32

    @given(a=i32, b=i32)
    def test_sub_wraps(self, a, b):
        assert run_alu("sub", a, b) == (a - b) & MASK32

    @given(a=i32, b=i32)
    def test_mul_wraps(self, a, b):
        assert run_alu("mul", a, b) == (a * b) & MASK32

    @given(a=i32, b=i32.filter(lambda v: v != 0))
    def test_div_truncates_toward_zero(self, a, b):
        expected = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            expected = -expected
        assert to_signed(run_alu("div", a, b)) == to_signed(
            expected & MASK32)

    @given(a=i32, b=i32.filter(lambda v: v != 0))
    def test_mod_sign_follows_dividend(self, a, b):
        result = to_signed(run_alu("mod", a, b))
        expected = abs(a) % abs(b)
        if a < 0:
            expected = -expected
        assert result == expected

    def test_div_by_zero_traps(self):
        with pytest.raises(DivideByZeroError):
            run_alu("div", 5, 0)

    def test_mod_by_zero_traps(self):
        with pytest.raises(DivideByZeroError):
            run_alu("mod", 5, 0)

    @given(a=i32, b=i32)
    def test_bitwise(self, a, b):
        assert run_alu("and", a, b) == (a & b) & MASK32
        assert run_alu("or", a, b) == (a | b) & MASK32
        assert run_alu("xor", a, b) == (a ^ b) & MASK32

    @given(a=i32, sh=st.integers(0, 31))
    def test_shifts(self, a, sh):
        ua = a & MASK32
        assert run_alu("shl", a, sh) == (ua << sh) & MASK32
        assert run_alu("shr", a, sh) == ua >> sh
        assert run_alu("sra", a, sh) == (to_signed(ua) >> sh) & MASK32

    @given(a=i32, sh=st.integers(32, 200))
    def test_shift_amount_masked_to_5_bits(self, a, sh):
        assert run_alu("shl", a, sh) == \
            ((a & MASK32) << (sh & 31)) & MASK32


class TestComparisons:
    @given(a=i32, b=i32)
    def test_signed_comparisons(self, a, b):
        assert run_alu("slt", a, b) == int(a < b)
        assert run_alu("sle", a, b) == int(a <= b)
        assert run_alu("sgt", a, b) == int(a > b)
        assert run_alu("sge", a, b) == int(a >= b)
        assert run_alu("seq", a, b) == int(a == b)
        assert run_alu("sne", a, b) == int(a != b)

    @given(a=i32, b=i32)
    def test_unsigned_comparisons(self, a, b):
        ua, ub = a & MASK32, b & MASK32
        assert run_alu("sltu", a, b) == int(ua < ub)
        assert run_alu("sgeu", a, b) == int(ua >= ub)


class TestControlFlow:
    def test_call_and_ret(self):
        cpu = CPU(assemble("""
        main:
            call helper
            halt r1
        helper:
            mov r1, 11
            ret
        """), CFG)
        assert cpu.run().exit_code == 11

    def test_indirect_call_through_setcode(self):
        cpu = CPU(assemble("""
        main:
            setcode r5, helper
            callr r5
            halt r1
        helper:
            mov r1, 22
            ret
        """), CFG)
        assert cpu.run().exit_code == 22

    def test_indirect_call_without_code_meta_traps_in_full_mode(self):
        cpu = CPU(assemble("""
        main:
            mov r5, 2
            callr r5
            halt 0
            ret
        """), MachineConfig.hardbound(timing=False))
        with pytest.raises(InvalidCodePointerError):
            cpu.run()

    def test_indirect_call_out_of_range_traps(self):
        cpu = CPU(assemble("""
        main:
            setcode r5, main
            add r5, r5, 1000
            callr r5
            halt 0
        """), CFG)
        with pytest.raises(InvalidCodePointerError):
            cpu.run()

    def test_fetch_past_end_faults(self):
        cpu = CPU(assemble("main:\n  mov r1, 1\n"), CFG)  # no halt
        with pytest.raises(MemoryFault):
            cpu.run()

    def test_instruction_limit(self):
        cpu = CPU(assemble("main:\n  jmp main\n"),
                  MachineConfig.plain(timing=False,
                                      max_instructions=1000))
        with pytest.raises(InstructionLimitExceeded):
            cpu.run()

    def test_abort_register_form(self):
        cpu = CPU(assemble("main:\n  mov r1, 9\n  abort r1\n"), CFG)
        with pytest.raises(AbortError) as exc:
            cpu.run()
        assert exc.value.code == 9


class TestHardBoundPrimitives:
    HB = MachineConfig.hardbound(timing=False)

    def test_readbase_readbound(self):
        cpu = CPU(assemble("""
        main:
            mov r1, 0x2000000
            setbound r2, r1, 64
            readbase r3, r2
            readbound r4, r2
            halt 0
        """), self.HB)
        cpu.run()
        assert cpu.regs.value[3] == 0x2000000
        assert cpu.regs.value[4] == 0x2000000 + 64
        assert not cpu.regs.is_pointer(3)

    def test_setunsafe_passes_all_checks(self):
        cpu = CPU(assemble("""
        main:
            mov r1, 64
            sbrk r1
            mov r1, 0x1000000
            setunsafe r2, r1
            load r3, [r2 + 60]
            halt 0
        """), self.HB)
        cpu.run()
        assert cpu.regs.base[2] == 0
        assert cpu.regs.bound[2] == MAXINT

    def test_clrbnd_strips_metadata(self):
        cpu = CPU(assemble("""
        main:
            mov r1, 0x1000000
            setbound r2, r1, 8
            clrbnd r2, r2
            halt 0
        """), self.HB)
        cpu.run()
        assert not cpu.regs.is_pointer(2)

    def test_lea_propagates_bounds(self):
        cpu = CPU(assemble("""
        main:
            mov r1, 0x1000000
            setbound r2, r1, 32
            mov r3, 2
            lea r4, [r2 + r3*4 + 4]
            halt 0
        """), self.HB)
        cpu.run()
        assert cpu.regs.value[4] == 0x1000000 + 12
        assert cpu.regs.base[4] == 0x1000000
        assert cpu.regs.bound[4] == 0x1000000 + 32

    def test_sub_word_store_clears_pointer_tag(self):
        """Overwriting part of a stored pointer destroys it (word
        tag cleared), so a later load yields a non-pointer."""
        cpu = CPU(assemble("""
        main:
            mov r1, 64
            sbrk r1
            mov r1, 0x1000000
            setbound r2, r1, 64
            store [r2], r2       ; store pointer
            mov r3, 7
            storeb [r2 + 1], r3  ; clobber one byte of it
            load r4, [r2]
            halt 0
        """), self.HB)
        cpu.run()
        assert not cpu.regs.is_pointer(4)

    def test_mem_check_prefers_bounded_index_register(self):
        """[int_base + ptr_index] is guarded by the pointer's bounds."""
        cpu = CPU(assemble("""
        main:
            mov r1, 64
            sbrk r1
            mov r1, 0x1000000
            setbound r2, r1, 8
            mov r3, 0            ; plain integer base
            load r4, [r3 + r2*1 + 8]
            halt 0
        """), self.HB)
        from repro.machine import BoundsError
        with pytest.raises(BoundsError):
            cpu.run()
