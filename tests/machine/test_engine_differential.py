"""Differential testing: decoded closure engine vs. legacy dispatch.

The decoded engine must be *bit-identical* to the legacy interpreter:
same exit codes, program output, instruction/µop/cycle counts, same
HardBound and memory-system statistics, and the same traps (type,
message, faulting pc) on every violation.  These tests run real Olden
workloads and the violation scenarios under both engines and compare
everything observable.
"""

import pytest

from repro.harness.runner import compile_cached
from repro.machine import (
    CPU,
    BoundsError,
    InstructionLimitExceeded,
    MachineConfig,
    MemoryFault,
    NonPointerError,
    Trap,
)
from repro.minic.driver import compile_program, mode_for_config
from repro.workloads.registry import WORKLOADS

#: three Olden workloads exercising trees, graphs and linked lists
DIFF_WORKLOADS = ("treeadd", "em3d", "health")

ENGINES = ("legacy", "decoded")


def run_both(program, **config_kw):
    """Run one program under both engines; return both results."""
    results = {}
    for engine in ENGINES:
        cpu = CPU(program, MachineConfig(engine=engine, **config_kw))
        results[engine] = cpu.run()
    return results["legacy"], results["decoded"]


def assert_identical(legacy, decoded):
    assert decoded.exit_code == legacy.exit_code
    assert decoded.output == legacy.output
    assert decoded.instructions == legacy.instructions
    assert decoded.uops == legacy.uops
    assert decoded.stall_cycles == legacy.stall_cycles
    assert decoded.cycles == legacy.cycles
    assert decoded.setbound_uops == legacy.setbound_uops
    if legacy.hb_stats is None:
        assert decoded.hb_stats is None
    else:
        assert decoded.hb_stats.as_dict() == legacy.hb_stats.as_dict()
    if legacy.mem_stats is None:
        assert decoded.mem_stats is None
    else:
        assert decoded.mem_stats.as_dict() == legacy.mem_stats.as_dict()


class TestWorkloadEquivalence:
    @pytest.mark.parametrize("name", DIFF_WORKLOADS)
    def test_hardbound_functional(self, name):
        config = MachineConfig.hardbound(timing=False)
        program = compile_cached(WORKLOADS[name].source,
                                 mode_for_config(config))
        legacy, decoded = run_both(
            program, mode=config.mode, encoding=config.encoding,
            timing=False)
        assert_identical(legacy, decoded)

    @pytest.mark.parametrize("name", DIFF_WORKLOADS)
    def test_plain_functional(self, name):
        config = MachineConfig.plain(timing=False)
        program = compile_cached(WORKLOADS[name].source,
                                 mode_for_config(config))
        legacy, decoded = run_both(
            program, mode=config.mode, timing=False)
        assert_identical(legacy, decoded)

    def test_hardbound_with_timing_model(self):
        """Full stats equality including stalls, cache and page counts."""
        config = MachineConfig.hardbound(encoding="intern11")
        program = compile_cached(WORKLOADS["treeadd"].source,
                                 mode_for_config(config))
        legacy, decoded = run_both(
            program, mode=config.mode, encoding="intern11", timing=True)
        assert_identical(legacy, decoded)

    @pytest.mark.parametrize("encoding", ("extern4", "intern4"))
    def test_encodings_with_timing_model(self, encoding):
        config = MachineConfig.hardbound(encoding=encoding)
        program = compile_cached(WORKLOADS["em3d"].source,
                                 mode_for_config(config))
        legacy, decoded = run_both(
            program, mode=config.mode, encoding=encoding, timing=True)
        assert_identical(legacy, decoded)


VIOLATIONS = {
    "heap-overflow": """
        int main() {
            int *p = (int*)malloc(4 * sizeof(int));
            p[4] = 1;
            return 0;
        }""",
    "heap-read-overflow": """
        int main() {
            int *p = (int*)malloc(8);
            return p[2];
        }""",
    "heap-underflow": """
        int main() {
            int *p = (int*)malloc(8);
            p[-1] = 3;
            return 0;
        }""",
}


class TestTrapEquivalence:
    @pytest.mark.parametrize("name", sorted(VIOLATIONS))
    def test_violations_trap_identically(self, name):
        config = MachineConfig.hardbound(timing=False)
        program = compile_program(VIOLATIONS[name],
                                  mode_for_config(config))
        traps = {}
        for engine in ENGINES:
            cpu = CPU(program, MachineConfig.hardbound(
                timing=False, engine=engine))
            with pytest.raises(BoundsError) as exc:
                cpu.run()
            traps[engine] = (type(exc.value), str(exc.value),
                             exc.value.pc, cpu.icount, cpu.pc)
        assert traps["decoded"] == traps["legacy"]

    def test_nonpointer_trap_identical(self):
        from repro.isa import assemble
        program = assemble("""
        main:
            mov r1, 0x2000000
            load r2, [r1]
            halt 0
        """)
        traps = {}
        for engine in ENGINES:
            cpu = CPU(program, MachineConfig.hardbound(
                timing=False, engine=engine))
            with pytest.raises(NonPointerError) as exc:
                cpu.run()
            traps[engine] = (str(exc.value), exc.value.pc, cpu.icount)
        assert traps["decoded"] == traps["legacy"]

    def test_fetch_fault_identical(self):
        """Falling off the end faults with the same pc annotation."""
        from repro.isa import assemble
        program = assemble("main:\n  mov r1, 1\n")
        traps = {}
        for engine in ENGINES:
            cpu = CPU(program, MachineConfig.plain(
                timing=False, engine=engine))
            with pytest.raises(MemoryFault) as exc:
                cpu.run()
            traps[engine] = (str(exc.value), exc.value.pc,
                             cpu.icount, cpu.pc)
        assert traps["decoded"] == traps["legacy"]

    def test_instruction_limit_identical(self):
        from repro.isa import assemble
        program = assemble("main:\n  jmp main\n")
        states = {}
        for engine in ENGINES:
            cpu = CPU(program, MachineConfig.plain(
                timing=False, engine=engine, max_instructions=1000))
            with pytest.raises(InstructionLimitExceeded):
                cpu.run()
            states[engine] = (cpu.icount, cpu.pc)
        assert states["decoded"] == states["legacy"]

    def test_divide_by_zero_identical(self):
        from repro.isa import assemble
        from repro.machine import DivideByZeroError
        program = assemble("""
        main:
            mov r1, 10
            mov r2, 0
            div r3, r1, r2
            halt 0
        """)
        traps = {}
        for engine in ENGINES:
            cpu = CPU(program, MachineConfig.plain(
                timing=False, engine=engine))
            with pytest.raises(DivideByZeroError) as exc:
                cpu.run()
            traps[engine] = (str(exc.value), exc.value.pc, cpu.icount)
        assert traps["decoded"] == traps["legacy"]


class TestTemporalEquivalence:
    def test_use_after_free_identical(self):
        from repro.machine.errors import UseAfterFreeError
        from repro.minic.driver import compile_program
        source = """
        int main() {
            int *p = (int*)malloc(4 * sizeof(int));
            p[1] = 7;
            free((void*)p);
            return p[1];             // dangling read
        }"""
        config = MachineConfig.hardbound(timing=False, temporal=True)
        program = compile_program(source, mode_for_config(config))
        traps = {}
        for engine in ENGINES:
            cpu = CPU(program, MachineConfig.hardbound(
                timing=False, temporal=True, engine=engine))
            with pytest.raises(UseAfterFreeError) as exc:
                cpu.run()
            traps[engine] = (str(exc.value), exc.value.pc, cpu.icount)
        assert traps["decoded"] == traps["legacy"]
