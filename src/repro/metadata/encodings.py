"""Compressed bounded-pointer encodings.

The paper's key efficiency idea (Section 4.3): most C pointers point
at the *start* of a *small* object, so their ``{base; bound}`` can be
encoded in a few bits instead of two shadow words.  Three schemes are
evaluated plus the uncompressed strawman:

``extern4``
    4 tag bits per word (tag space at ``TAG4_BASE``, 8KB tag cache).
    Tag values 1..14 encode ``base == ptr`` and ``bound - base ==
    tag*4`` (object sizes 4..56 bytes, multiples of 4); tag 15 marks a
    non-compressed pointer whose metadata lives in the shadow space.

``intern4``
    1 tag bit per word (2KB tag cache); 4 bits are stolen from inside
    the pointer itself, so only pointers in the lowest/highest 128MB
    of the address space are eligible.  Encodes the same object sizes
    as ``extern4``.

``intern11``
    1 tag bit per word; 11 internal bits, the 64-bit-oriented variant.
    Encodes ``base == ptr`` and sizes up to ``4 * 2**11`` bytes.

``uncompressed``
    1 tag bit per word; every pointer's metadata is in the shadow
    space.  (Functional reference; not one of Figure 5's bars.)

Compression is *transparent*: it never changes program-visible
semantics, only which metadata accesses (and hence µops, cache traffic
and pages) the hardware performs.  The simulator therefore keeps exact
functional metadata elsewhere and consults the encoding purely for
classification and metadata-space geometry.
"""

from __future__ import annotations

from typing import Dict, Type

from repro.layout import tag1_addr, tag4_addr

#: 128MB: the internal schemes steal upper pointer bits, so pointers
#: into the top/bottom 128MB windows of the 32-bit space are the only
#: compressible ones (Section 4.3).
_INTERNAL_WINDOW = 128 * 1024 * 1024


class Encoding:
    """Strategy interface for pointer-metadata encodings."""

    #: registry name
    name = "abstract"
    #: bits of tag metadata per 32-bit word (1 or 4)
    tag_bits = 1
    #: recommended tag metadata cache size (Section 5.1)
    tag_cache_size = 2 * 1024

    def is_compressible(self, value: int, base: int, bound: int) -> bool:
        """True if {value; base; bound} fits the compressed form."""
        raise NotImplementedError

    def tag_addr(self, addr: int) -> int:
        """Tag-space byte covering the data word at ``addr``."""
        return tag4_addr(addr) if self.tag_bits == 4 else tag1_addr(addr)

    def compressed_tag(self, value: int, base: int, bound: int) -> int:
        """Tag-space encoding of a pointer (diagnostics/tests only).

        For 4-bit schemes: 0 = non-pointer, 1..14 = compressed size
        ``tag*4``, 15 = uncompressed.  For 1-bit schemes: 0/1.
        """
        if self.tag_bits == 1:
            return 1
        if self.is_compressible(value, base, bound):
            return (bound - base) // 4
        return 15

    def __repr__(self):
        return "<Encoding %s (%d tag bit%s)>" % (
            self.name, self.tag_bits, "s" if self.tag_bits > 1 else "")


def _small_object(value: int, base: int, bound: int) -> bool:
    """Shared extern4/intern4 rule: ptr==base, size in {4..56} mult of 4."""
    if value != base or bound <= base:
        return False
    size = bound - base
    return size % 4 == 0 and size <= 56


def _in_internal_window(value: int) -> bool:
    """Eligibility for internal bit-stealing on a 32-bit space."""
    return value < _INTERNAL_WINDOW or value >= (1 << 32) - _INTERNAL_WINDOW


class UncompressedEncoding(Encoding):
    """Every pointer keeps full shadow-space metadata."""

    name = "uncompressed"
    tag_bits = 1
    tag_cache_size = 2 * 1024

    def is_compressible(self, value, base, bound):
        return False


class External4Encoding(Encoding):
    """4 tag bits per word in a dedicated (larger) tag space."""

    name = "extern4"
    tag_bits = 4
    tag_cache_size = 8 * 1024

    def is_compressible(self, value, base, bound):
        return _small_object(value, base, bound)


class Internal4Encoding(Encoding):
    """4 bits stolen inside the pointer; 1-bit tag space."""

    name = "intern4"
    tag_bits = 1
    tag_cache_size = 2 * 1024

    def is_compressible(self, value, base, bound):
        return _small_object(value, base, bound) and \
            _in_internal_window(value)

    def compressed_tag(self, value, base, bound):
        return 1


class Internal11Encoding(Encoding):
    """11 internal bits: objects up to 4 * 2**11 = 8KB compress."""

    name = "intern11"
    tag_bits = 1
    tag_cache_size = 2 * 1024
    max_size = 4 << 11

    def is_compressible(self, value, base, bound):
        if value != base or bound <= base:
            return False
        size = bound - base
        if size % 4 or size > self.max_size:
            return False
        return _in_internal_window(value)

    def compressed_tag(self, value, base, bound):
        return 1


ENCODINGS: Dict[str, Type[Encoding]] = {
    cls.name: cls
    for cls in (UncompressedEncoding, External4Encoding,
                Internal4Encoding, Internal11Encoding)
}

#: top of the internal bit-stealing window (see ``_in_internal_window``)
_WINDOW_TOP = (1 << 32) - _INTERNAL_WINDOW


def make_inline_compressible(encoding: Encoding):
    """Plain-closure equivalent of ``encoding.is_compressible``.

    The decoded execution engine calls ``is_compressible`` on every
    pointer load/store; for the four stock encodings the bound-method
    dispatch (plus the ``_small_object``/``_in_internal_window``
    helper calls) is pure overhead, so this returns a flat closure
    with the same decision procedure and no sub-calls.  Returns
    ``None`` for subclassed or unknown encodings — callers must then
    fall back to the method (exact-type checks, so an override can
    never be silently bypassed).
    """
    cls = type(encoding)
    if cls is UncompressedEncoding:
        def never_compressible(value, base, bound):
            return False
        return never_compressible
    if cls is External4Encoding:
        def extern4_compressible(value, base, bound):
            return (value == base and bound > base
                    and (bound - base) % 4 == 0
                    and bound - base <= 56)
        return extern4_compressible
    if cls is Internal4Encoding:
        def intern4_compressible(value, base, bound):
            return (value == base and bound > base
                    and (bound - base) % 4 == 0
                    and bound - base <= 56
                    and (value < _INTERNAL_WINDOW
                         or value >= _WINDOW_TOP))
        return intern4_compressible
    if cls is Internal11Encoding:
        max_size = Internal11Encoding.max_size

        def intern11_compressible(value, base, bound):
            if value != base or bound <= base:
                return False
            size = bound - base
            if size % 4 or size > max_size:
                return False
            return value < _INTERNAL_WINDOW or value >= _WINDOW_TOP
        return intern11_compressible
    return None


def inline_compressible_expr(encoding: Encoding, value: str,
                             base: str, bound: str):
    """Source-expression equivalent of ``encoding.is_compressible``.

    Returns a boolean Python expression over the three given variable
    names, with the same decision procedure as the stock encodings'
    ``is_compressible`` (no sub-calls, no method dispatch) — the
    superblock tier's fused metadata templates splice it straight
    into generated code.  Returns ``None`` for subclassed or unknown
    encodings, exactly like :func:`make_inline_compressible`, so an
    override can never be silently bypassed.
    """
    cls = type(encoding)
    if cls is UncompressedEncoding:
        return "False"
    small = ("{v} == {b} and {bd} > {b} and ({bd} - {b}) % 4 == 0"
             " and {bd} - {b} <= 56").format(v=value, b=base, bd=bound)
    window = ("({v} < {lo} or {v} >= {hi})"
              .format(v=value, lo=_INTERNAL_WINDOW, hi=_WINDOW_TOP))
    if cls is External4Encoding:
        return "(%s)" % small
    if cls is Internal4Encoding:
        return "(%s and %s)" % (small, window)
    if cls is Internal11Encoding:
        return ("({v} == {b} and {bd} > {b} and ({bd} - {b}) % 4 == 0"
                " and {bd} - {b} <= {mx} and {w})"
                .format(v=value, b=base, bd=bound,
                        mx=Internal11Encoding.max_size, w=window))
    return None


def get_encoding(name: str) -> Encoding:
    """Instantiate an encoding by registry name."""
    try:
        return ENCODINGS[name]()
    except KeyError:
        raise ValueError("unknown encoding %r (have: %s)"
                         % (name, ", ".join(sorted(ENCODINGS))))
