"""Sharded matrix harness: worker equivalence and on-disk caching."""

import pickle

from repro.harness.parallel import (
    ObjTableSummary,
    ResultCache,
    cell_descriptor,
    run_benchmark_matrix_parallel,
    run_cell,
)
from repro.harness.runner import run_benchmark_matrix
from repro.harness.sweeps import sweep_ccured_safe_fraction

WORKLOADS = ("treeadd", "power")
ENCODINGS = ("intern11",)
#: cells per workload: base + intern11 + ccured + objtable
CELLS = len(WORKLOADS) * 4


def assert_matrices_equal(parallel, serial):
    assert set(parallel) == set(serial)
    for name in serial:
        p, s = parallel[name], serial[name]
        assert p.base.cycles == s.base.cycles
        assert p.base.uops == s.base.uops
        for enc in ENCODINGS:
            assert p.encodings[enc].cycles == s.encodings[enc].cycles
            assert (p.encodings[enc].hb_stats.as_dict()
                    == s.encodings[enc].hb_stats.as_dict())
            assert abs(p.overhead(enc) - s.overhead(enc)) < 1e-12
        assert p.ccured.cycles == s.ccured.cycles
        assert p.objtable.extra_uops == s.objtable.extra_uops
        assert abs(p.ccured_runtime_overhead()
                   - s.ccured_runtime_overhead()) < 1e-12
        assert abs(p.objtable_runtime_overhead()
                   - s.objtable_runtime_overhead()) < 1e-12


class TestShardedMatrix:
    def test_matches_serial_and_warm_rerun_hits_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        parallel = run_benchmark_matrix_parallel(
            workloads=WORKLOADS, encodings=ENCODINGS, workers=2,
            cache=cache)
        assert cache.hits == 0
        assert cache.misses == CELLS

        serial = run_benchmark_matrix(workloads=WORKLOADS,
                                      encodings=ENCODINGS)
        assert_matrices_equal(parallel, serial)

        # warm rerun: every cell served from disk, no worker touched
        warm_cache = ResultCache(str(tmp_path / "cache"))
        warm = run_benchmark_matrix_parallel(
            workloads=WORKLOADS, encodings=ENCODINGS, workers=2,
            cache=warm_cache)
        assert warm_cache.hits == CELLS
        assert warm_cache.misses == 0
        assert_matrices_equal(warm, serial)

    def test_source_change_invalidates_cell_key(self):
        a = ResultCache.key_of(
            cell_descriptor("treeadd", "intern11", True, "decoded"))
        b = ResultCache.key_of(
            cell_descriptor("treeadd", "intern11", True, "legacy"))
        c = ResultCache.key_of(
            cell_descriptor("treeadd", "intern11", False, "decoded"))
        d = ResultCache.key_of(
            cell_descriptor("power", "intern11", True, "decoded"))
        assert len({a, b, c, d}) == 4

    def test_cell_results_are_picklable_snapshots(self):
        result = run_cell(("treeadd", "intern11", False, "decoded"))
        clone = pickle.loads(pickle.dumps(result))
        assert clone.cycles == result.cycles
        assert clone.hb_stats.as_dict() == result.hb_stats.as_dict()
        summary = run_cell(("treeadd", "objtable", False, "decoded"))
        assert isinstance(summary, ObjTableSummary)
        clone = pickle.loads(pickle.dumps(summary))
        assert clone.extra_uops == summary.extra_uops


class TestShardedSweeps:
    def test_ccured_sweep_matches_serial(self):
        names = ["treeadd"]
        fractions = [0.5, 0.9]
        serial = sweep_ccured_safe_fraction(names, fractions)
        parallel = sweep_ccured_safe_fraction(names, fractions,
                                              workers=2)
        assert set(serial) == set(parallel)
        for fraction in serial:
            assert abs(serial[fraction] - parallel[fraction]) < 1e-12
