"""Execution-engine speedups over the legacy dispatch interpreter.

Not a paper figure — this tracks the simulator's own hot path across
all four engines on the Olden sweep (plain + HardBound per
workload):

* the pre-decoded closure engine must stay at least 2x faster than
  the legacy dispatch loop on the functional sweep;
* the basic-block fusion engine (with the fused memory templates
  over the flat-bytearray heap and the inlined fast memory-timing
  charges) must be at least 1.5x faster than the decoded engine on
  the timed sweep, and at least 1.3x faster than the PR 2 blocks
  engine on the timed sweep — the acceptance bar for the flat-heap
  + memory-fusion work;
* the array-backed cache-set layout (flat recency-ordered way
  tables replacing the recency-stamped dict sets) must be at least
  1.15x faster than the PR 3 blocks engine on the timed sweep — the
  acceptance bar for the PR 4 timing-model work;
* the superblock trace engine (now the default: cross-block trace
  closures over profiled hot paths, full-coverage instruction
  templates, fast-local rebinding of bound names, program-keyed
  fusion plans) must be at least 1.15x faster than the blocks
  engine on the timed sweep — the acceptance bar for the PR 5 trace
  tier — and at least 1.15x faster than the PR 4 blocks engine on
  the record host (``REPRO_ASSERT_PR4``);
* the whole-function trace tier (PR 6: call/ret chaining with
  return-address-prediction guards) must clear the committed
  superblocks-vs-decoded floor on the timed sweep and push the
  Olden-aggregate mean trace length past
  ``FLOOR_MEAN_TRACE_BLOCKS`` basic blocks, without regressing the
  PR 5 superblock engine on the record host (``REPRO_ASSERT_PR5``);
  the minic optimizer's dynamic instruction savings are recorded
  per workload (``optimizer_instructions``), while the engine
  ladder itself runs ``optimize=False`` binaries so its seconds
  stay comparable with every earlier PR baseline;
* the observability layer (PR 7) must be effectively free: with
  ``obs_events`` on, the timed superblocks sweep must stay within
  ``FLOOR_OBS_OVERHEAD_RATIO`` (events-off/events-on seconds ≥
  0.98, i.e. <2% slowdown) — the always-on counters themselves ride
  inside the engine and are covered by the ladder floors above;
* the service layer (PR 9) must make persistence pay: mapping the
  timed Olden sweep through a *warm* spawn-context worker fleet
  (program + fusion-plan caches resident) must beat a freshly
  spawned fleet by ``FLOOR_SERVICE_WARM_VS_COLD`` (recorded as
  ``service_warm_vs_cold``);
* every engine stays bit-identical to the others (enforced by
  ``tests/machine/test_engine_differential.py`` and
  ``tests/machine/test_superblocks.py``).

The events-on sweep also leaves CI-uploadable artifacts behind:
``results/obs_olden.jsonl`` (the full Olden event stream) and
``results/obs_report.txt`` (the rendered hot-trace/side-exit/phase
report of ``python -m repro.obs.report``).

The measured seconds and speedups are written to
``results/BENCH_engine.json`` so CI keeps a machine-readable record,
and CI's ``bench-gate`` step fails the build if the freshly emitted
``timed.blocks_vs_decoded`` falls below the committed floor (see
``benchmarks/check_bench_gate.py``).

The PR 2, PR 3 and PR 4 baselines below were re-measured on the
same host that produced the committed ``BENCH_engine.json`` (git
worktrees of commits ``e0292d8`` / ``80f9c25`` for PR 2/3, the PR 4
blocks engine of commit ``89681ce`` for PR 4, best of 3 rounds, same
protocol as this benchmark).  Cross-machine ratios against them are
meaningless, so the ≥1.3x / ≥1.15x / ≥1.15x assertions only fire
when ``REPRO_ASSERT_PR2`` / ``REPRO_ASSERT_PR3`` /
``REPRO_ASSERT_PR4`` are set in the environment (the
record-generating host sets them); the ratios themselves are always
recorded.
"""

import json
import os
import tempfile
import time

from check_bench_gate import (
    FLOOR_MEAN_TRACE_BLOCKS,
    FLOOR_OBS_OVERHEAD_RATIO,
    FLOOR_SERVICE_WARM_VS_COLD,
    FLOOR_TIMED_BLOCKS_VS_DECODED,
    FLOOR_TIMED_SUPERBLOCKS_VS_BLOCKS,
    FLOOR_TIMED_SUPERBLOCKS_VS_DECODED,
)
from conftest import RESULTS_DIR, write_result

from repro.harness.figures import format_table
from repro.harness.runner import compile_cached, run_workload
from repro.machine.config import MachineConfig
from repro.minic.driver import mode_for_config
from repro.workloads.registry import WORKLOADS

ENGINES = ("legacy", "decoded", "blocks", "superblocks")

#: timing-noise guard: each sweep is repeated and the minimum kept
ROUNDS = 3

#: the engine-ladder sweeps compile with ``optimize=False``: every
#: committed PR 2-5 baseline second was measured on unoptimized
#: binaries, so the ladder must keep executing the same programs for
#: the cross-PR ratios to stay meaningful.  The optimizer's own
#: effect is reported separately (``optimizer_instructions``).
LADDER_OPTIMIZE = False

#: PR 2 blocks engine (commit e0292d8) re-measured on the record host
PR2_BLOCKS_COMMIT = "e0292d8"
PR2_BLOCKS_TIMED_SECONDS = 3.358
PR2_BLOCKS_FUNCTIONAL_SECONDS = 1.770

#: PR 3 blocks engine (commit 80f9c25, stamped-dict LRU sets)
#: re-measured on the record host
PR3_BLOCKS_COMMIT = "80f9c25"
PR3_BLOCKS_TIMED_SECONDS = 2.920
PR3_BLOCKS_FUNCTIONAL_SECONDS = 1.160

#: PR 4 blocks engine (commit 89681ce, array-backed cache sets —
#: behaviourally identical to this tree's ``blocks`` engine)
#: measured on the record host
PR4_BLOCKS_COMMIT = "89681ce"
PR4_BLOCKS_TIMED_SECONDS = 2.45
PR4_BLOCKS_FUNCTIONAL_SECONDS = 1.27

#: PR 5 superblock engine (commit ce7d71c, call/ret-bounded traces)
#: on the record host — the committed ``BENCH_engine.json`` of that
#: PR, same sweep protocol
PR5_SUPERBLOCKS_COMMIT = "ce7d71c"
PR5_SUPERBLOCKS_TIMED_SECONDS = 1.923
PR5_SUPERBLOCKS_FUNCTIONAL_SECONDS = 0.877


def _warm_compile_cache(timing):
    for name in WORKLOADS:
        for config in (MachineConfig.plain(timing=timing),
                       MachineConfig.hardbound(timing=timing)):
            compile_cached(WORKLOADS[name].source,
                           mode_for_config(config),
                           optimize=LADDER_OPTIMIZE)


def _engine_introspection():
    """Trace-tier introspection of one representative timed run."""
    result = run_workload("health", MachineConfig.hardbound(
        encoding="intern11", engine="superblocks", timing=True),
        optimize=LADDER_OPTIMIZE)
    return result.engine_stats


def _trace_stats_sweep():
    """Cross-call trace statistics aggregated over the timed Olden
    sweep (the ``mean_trace_blocks`` acceptance target)."""
    formed = blocks = cross = mispredicts = dispatches = 0
    per_workload = {}
    for name in WORKLOADS:
        stats = run_workload(name, MachineConfig.hardbound(
            encoding="intern11", engine="superblocks", timing=True),
            optimize=LADDER_OPTIMIZE).engine_stats
        per_workload[name] = {
            "traces_formed": stats["traces_formed"],
            "mean_trace_blocks": stats["mean_trace_blocks"],
            "cross_call_traces": stats["cross_call_traces"],
            "ret_mispredict_rate": stats["ret_mispredict_rate"],
        }
        n = stats["traces_formed"]
        formed += n
        blocks += stats["mean_trace_blocks"] * n
        cross += stats["cross_call_traces"]
        mispredicts += stats["ret_mispredicts"]
        dispatches += stats["trace_dispatches"]
    return {
        "traces_formed": formed,
        "mean_trace_blocks": blocks / formed if formed else 0.0,
        "cross_call_traces": cross,
        "ret_mispredicts": mispredicts,
        "ret_mispredict_rate": (mispredicts / dispatches
                                if dispatches else 0.0),
        "per_workload": per_workload,
    }


def _optimizer_instruction_counts():
    """Dynamic instruction counts per workload, optimizer off vs on
    (functional HardBound runs — the counts are engine-independent)."""
    out = {}
    for name in WORKLOADS:
        counts = {}
        for optimize in (False, True):
            counts[optimize] = run_workload(
                name, MachineConfig.hardbound(timing=False),
                optimize=optimize).instructions
        out[name] = {
            "instructions_unoptimized": counts[False],
            "instructions_optimized": counts[True],
            "ratio": counts[True] / counts[False],
        }
    return out


def _sweep_seconds(engine, timing, obs=None):
    start = time.perf_counter()
    for name in WORKLOADS:
        run_workload(name, MachineConfig.plain(engine=engine,
                                               timing=timing,
                                               obs_events=obs),
                     optimize=LADDER_OPTIMIZE)
        run_workload(name, MachineConfig.hardbound(
            encoding="intern11", engine=engine, timing=timing,
            obs_events=obs),
            optimize=LADDER_OPTIMIZE)
    return time.perf_counter() - start


def _obs_overhead():
    """Events-on vs events-off seconds on the timed superblocks sweep.

    Interleaved min-of-``ROUNDS`` like the ladder itself; the
    events-on rounds append to a throwaway file so the measurement
    includes the real buffered-emit + flush cost.  Returns the
    record gated by ``FLOOR_OBS_OVERHEAD_RATIO`` (off/on ≥ 0.98
    means tracing costs under ~2%).
    """
    fd, scratch = tempfile.mkstemp(suffix=".jsonl",
                                   prefix="repro-obs-bench-")
    os.close(fd)
    try:
        best_off = best_on = float("inf")
        for _ in range(ROUNDS):
            best_off = min(best_off,
                           _sweep_seconds("superblocks", True))
            best_on = min(best_on,
                          _sweep_seconds("superblocks", True,
                                         obs=scratch))
        return {
            "events_off_seconds": best_off,
            "events_on_seconds": best_on,
            "ratio": best_off / best_on,
            "rounds": ROUNDS,
        }
    finally:
        os.unlink(scratch)


def _obs_artifacts():
    """One clean events-on Olden sweep → CI-uploadable artifacts.

    Writes ``results/obs_olden.jsonl`` (fresh file, not appended
    across builds) and the rendered ``results/obs_report.txt``.
    """
    from repro.obs.events import read_events
    from repro.obs.report import render_summary

    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "obs_olden.jsonl")
    if os.path.exists(path):
        os.remove(path)
    _sweep_seconds("superblocks", True, obs=path)
    report = render_summary(list(read_events(path)))
    write_result("obs_report.txt", report)
    return path


def _service_warm_vs_cold():
    """Warm persistent workers vs. a freshly spawned fleet (PR 9).

    Both passes map the same timed Olden sweep (plain + HardBound per
    workload) through :class:`repro.service.dispatch.Service` with
    spawn-context workers, so the cold pass honestly pays process
    start + compile + CFG/fusion-plan formation.  The warm fleet is
    primed twice first — the superblock plan cache converges over the
    first runs of a program, exactly like the ladder's own warm-up —
    then timed for min-of-``ROUNDS``; the cold side is min of two
    full spawn-map-shutdown cycles.  No result store is attached:
    every job must execute on a worker, so the ratio measures warm
    *processes*, not cache hits.
    """
    from repro.harness.parallel import run_cell
    from repro.service import Service

    jobs = [(name, kind, True, "superblocks")
            for name in sorted(WORKLOADS)
            for kind in ("base", "intern11")]
    service_workers = 2

    cold = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        with Service(workers=service_workers,
                     context="spawn") as fleet:
            fleet.map(run_cell, jobs)
        cold = min(cold, time.perf_counter() - start)

    with Service(workers=service_workers, context="spawn") as fleet:
        for _ in range(2):
            fleet.map(run_cell, jobs)  # prime plan caches
        warm = float("inf")
        for _ in range(ROUNDS):
            start = time.perf_counter()
            fleet.map(run_cell, jobs)
            warm = min(warm, time.perf_counter() - start)
        status = fleet.status()

    return {
        "cold_seconds": cold,
        "warm_seconds": warm,
        "ratio": cold / warm if warm > 0 else float("inf"),
        "workers": service_workers,
        "jobs": len(jobs),
        "warm_jobs": sum(worker["warm_jobs"]
                         for worker in status["workers"]),
        "rounds": ROUNDS,
    }


def test_engine_speedups(benchmark):
    def measure():
        seconds = {}
        for timing in (False, True):
            _warm_compile_cache(timing)
            # the superblock tier's fusion-plan cache converges over
            # the first few runs of a program (traces recorded in
            # run N install at table-build time in run N+1, and the
            # generated trace fusers compile once per process), so
            # warm it to steady state first — the rounds below
            # measure the engine, not the convergence transient.
            # The other engines carry no cross-run state.
            for _ in range(3):
                _sweep_seconds("superblocks", timing)
            best = {engine: float("inf") for engine in ENGINES}
            # interleave rounds so machine-load drift hits every
            # engine equally
            for _ in range(ROUNDS):
                for engine in ENGINES:
                    best[engine] = min(best[engine],
                                       _sweep_seconds(engine, timing))
            seconds[timing] = best
        return seconds

    seconds = benchmark.pedantic(measure, rounds=1, iterations=1)

    speedups = {}
    rows = []
    for timing in (False, True):
        best = seconds[timing]
        speedups[timing] = {
            "decoded_vs_legacy": best["legacy"] / best["decoded"],
            "blocks_vs_legacy": best["legacy"] / best["blocks"],
            "blocks_vs_decoded": best["decoded"] / best["blocks"],
            "superblocks_vs_blocks": (best["blocks"]
                                      / best["superblocks"]),
            "superblocks_vs_decoded": (best["decoded"]
                                       / best["superblocks"]),
        }
        rows.append(
            ["timing=%s" % timing]
            + ["%.2fs" % best[engine] for engine in ENGINES]
            + ["%.2fx" % speedups[timing]["superblocks_vs_blocks"]])
    speedups[True]["blocks_vs_pr2_blocks"] = \
        PR2_BLOCKS_TIMED_SECONDS / seconds[True]["blocks"]
    speedups[False]["blocks_vs_pr2_blocks"] = \
        PR2_BLOCKS_FUNCTIONAL_SECONDS / seconds[False]["blocks"]
    speedups[True]["blocks_vs_pr3_blocks"] = \
        PR3_BLOCKS_TIMED_SECONDS / seconds[True]["blocks"]
    speedups[False]["blocks_vs_pr3_blocks"] = \
        PR3_BLOCKS_FUNCTIONAL_SECONDS / seconds[False]["blocks"]
    speedups[True]["superblocks_vs_pr4_blocks"] = \
        PR4_BLOCKS_TIMED_SECONDS / seconds[True]["superblocks"]
    speedups[False]["superblocks_vs_pr4_blocks"] = \
        PR4_BLOCKS_FUNCTIONAL_SECONDS / seconds[False]["superblocks"]
    speedups[True]["superblocks_vs_pr5_superblocks"] = \
        PR5_SUPERBLOCKS_TIMED_SECONDS / seconds[True]["superblocks"]
    speedups[False]["superblocks_vs_pr5_superblocks"] = \
        (PR5_SUPERBLOCKS_FUNCTIONAL_SECONDS
         / seconds[False]["superblocks"])
    table = format_table(
        ["sweep", "legacy", "decoded", "blocks", "superblocks",
         "superblocks/blocks"],
        rows, "Engine speedups (Olden sweep)")
    print("\n" + table)
    write_result("engine_speedup.txt", table)

    obs_overhead = _obs_overhead()
    service_warm = _service_warm_vs_cold()
    print("\nservice warm-vs-cold: cold %.3fs, warm %.3fs, %.2fx "
          "(%d jobs, %d workers)"
          % (service_warm["cold_seconds"],
             service_warm["warm_seconds"], service_warm["ratio"],
             service_warm["jobs"], service_warm["workers"]))
    _obs_artifacts()
    trace_stats = _trace_stats_sweep()
    optimizer = _optimizer_instruction_counts()
    opt_rows = [[name,
                 "%d" % cell["instructions_unoptimized"],
                 "%d" % cell["instructions_optimized"],
                 "%.1f%%" % (100.0 * (1.0 - cell["ratio"]))]
                for name, cell in sorted(optimizer.items())]
    opt_table = format_table(
        ["benchmark", "instr (opt off)", "instr (opt on)", "saved"],
        opt_rows, "minic optimizer: dynamic instruction counts")
    print("\n" + opt_table)
    write_result("optimizer_instructions.txt", opt_table)

    record = {
        "workloads": list(WORKLOADS),
        "rounds": ROUNDS,
        "seconds": {
            "functional": seconds[False],
            "timed": seconds[True],
        },
        "speedups": {
            "functional": speedups[False],
            "timed": speedups[True],
        },
        "pr2_blocks_baseline": {
            "commit": PR2_BLOCKS_COMMIT,
            "timed_seconds": PR2_BLOCKS_TIMED_SECONDS,
            "functional_seconds": PR2_BLOCKS_FUNCTIONAL_SECONDS,
            "note": "same-host re-measurement of the PR 2 blocks "
                    "engine; blocks_vs_pr2_blocks compares against "
                    "it and is only asserted on the record host "
                    "(REPRO_ASSERT_PR2)",
        },
        "pr3_blocks_baseline": {
            "commit": PR3_BLOCKS_COMMIT,
            "timed_seconds": PR3_BLOCKS_TIMED_SECONDS,
            "functional_seconds": PR3_BLOCKS_FUNCTIONAL_SECONDS,
            "note": "same-host re-measurement of the PR 3 blocks "
                    "engine (stamped-dict LRU sets); "
                    "blocks_vs_pr3_blocks compares against it and "
                    "is only asserted on the record host "
                    "(REPRO_ASSERT_PR3)",
        },
        "pr4_blocks_baseline": {
            "commit": PR4_BLOCKS_COMMIT,
            "timed_seconds": PR4_BLOCKS_TIMED_SECONDS,
            "functional_seconds": PR4_BLOCKS_FUNCTIONAL_SECONDS,
            "note": "same-host measurement of the PR 4 blocks "
                    "engine (behaviourally identical to this "
                    "tree's blocks engine); "
                    "superblocks_vs_pr4_blocks compares against it "
                    "and is only asserted on the record host "
                    "(REPRO_ASSERT_PR4)",
        },
        "pr5_superblocks_baseline": {
            "commit": PR5_SUPERBLOCKS_COMMIT,
            "timed_seconds": PR5_SUPERBLOCKS_TIMED_SECONDS,
            "functional_seconds": PR5_SUPERBLOCKS_FUNCTIONAL_SECONDS,
            "note": "record-host seconds of the PR 5 superblock "
                    "engine (call/ret-bounded traces), from that "
                    "PR's committed BENCH_engine.json; "
                    "superblocks_vs_pr5_superblocks compares "
                    "against it and is only asserted on the record "
                    "host (REPRO_ASSERT_PR5)",
        },
        "superblocks_stats": _engine_introspection(),
        "trace_stats": trace_stats,
        "optimizer_instructions": optimizer,
        "obs_overhead": obs_overhead,
        "service_warm_vs_cold": service_warm,
        "ladder_optimize": LADDER_OPTIMIZE,
    }
    write_result("BENCH_engine.json", json.dumps(record, indent=2))

    # the decoded engine's original bar (PR 1)
    assert speedups[False]["decoded_vs_legacy"] >= 2.0, speedups
    assert speedups[True]["decoded_vs_legacy"] >= 1.2, speedups
    # the blocks engine must not regress the functional sweep...
    assert speedups[False]["blocks_vs_decoded"] >= 1.0, speedups
    # ...and must clear the committed floor on the timed sweep (the
    # constant lives in check_bench_gate so the in-process assert and
    # CI's bench-gate step can never disagree)
    assert (speedups[True]["blocks_vs_decoded"]
            >= FLOOR_TIMED_BLOCKS_VS_DECODED), speedups
    # flat-heap + memory-fusion acceptance bar (PR 3): ≥1.3x over
    # the PR 2 blocks engine, same host only
    if os.environ.get("REPRO_ASSERT_PR2"):
        assert speedups[True]["blocks_vs_pr2_blocks"] >= 1.3, speedups
    # array-backed cache-set acceptance bar (PR 4): ≥1.15x over the
    # PR 3 blocks engine, same host only (cloud-runner noise must
    # not flake PRs, so CI leaves this knob unset)
    if os.environ.get("REPRO_ASSERT_PR3"):
        assert speedups[True]["blocks_vs_pr3_blocks"] >= 1.15, \
            speedups
    # superblock trace-tier acceptance bar (PR 5): the trace engine
    # must not regress the functional sweep, must clear the
    # committed timed floor vs the blocks engine (host-independent,
    # CI-gated via check_bench_gate), and ≥1.15x over the PR 4
    # blocks engine on the record host
    assert speedups[False]["superblocks_vs_blocks"] >= 1.0, speedups
    assert (speedups[True]["superblocks_vs_blocks"]
            >= FLOOR_TIMED_SUPERBLOCKS_VS_BLOCKS), speedups
    if os.environ.get("REPRO_ASSERT_PR4"):
        assert speedups[True]["superblocks_vs_pr4_blocks"] >= 1.15, \
            speedups
    # whole-function trace acceptance (PR 6): the cross-call trace
    # tier must clear the committed superblocks-vs-decoded floor and
    # the Olden-aggregate mean trace length floor, and must not
    # regress the PR 5 superblock engine on the record host (the
    # tentpole's win is trace length/coverage; wall-clock is pinned
    # to the shared timing-model floor, so the same-host bar is
    # no-regression-within-noise, not a speedup)
    assert (speedups[True]["superblocks_vs_decoded"]
            >= FLOOR_TIMED_SUPERBLOCKS_VS_DECODED), speedups
    assert (trace_stats["mean_trace_blocks"]
            >= FLOOR_MEAN_TRACE_BLOCKS), trace_stats
    if os.environ.get("REPRO_ASSERT_PR5"):
        assert (speedups[True]["superblocks_vs_pr5_superblocks"]
                >= 0.95), speedups
    # observability acceptance (PR 7): event tracing must cost under
    # ~2% on the timed superblocks sweep (host-independent — both
    # sweeps run in the same process; the floor lives in
    # check_bench_gate so CI's gate step can never disagree)
    assert obs_overhead["ratio"] >= FLOOR_OBS_OVERHEAD_RATIO, \
        obs_overhead
    # simulation-as-a-service acceptance (PR 9): a warm persistent
    # worker fleet must beat a freshly spawned one on the timed Olden
    # sweep (host-independent — both passes run back to back on the
    # same machine; the floor lives in check_bench_gate so CI's gate
    # step can never disagree)
    assert service_warm["ratio"] >= FLOOR_SERVICE_WARM_VS_COLD, \
        service_warm
