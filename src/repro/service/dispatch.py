"""Work-stealing dispatcher over a pool of persistent daemon workers.

:class:`Service` owns N long-lived worker processes
(:func:`repro.service.worker.worker_main`) and distributes jobs to
them with the classic coordination patterns (McKenney, *Is Parallel
Programming Hard…*):

* **partitioned ownership** — every worker has its *own* job deque;
  submissions land on the shortest deque, so the common case touches
  one owner's queue and no global structure is contended;
* **work stealing** — a worker that drains its own deque steals from
  the *tail* of the longest other deque (the opposite end from the
  owner's head), so imbalanced batches still finish at pool speed;
* **safe concurrent publication** — results are published to the
  shared :class:`~repro.service.store.ResultStore` by the workers
  themselves via tmp-file + atomic rename; the dispatcher's read
  path takes no lock.

On top of that sits the submission API:

* :meth:`submit` → :class:`concurrent.futures.Future`, with
  **deduplication**: a job whose content-hash ``key`` matches one
  already queued or running returns the in-flight job's future
  instead of executing twice, and a key already published in the
  store resolves immediately without touching a worker;
* **robustness** — a worker that dies mid-job is detected via its
  process sentinel, the job is requeued (once, by default) onto a
  freshly spawned replacement, and a ``job_requeue`` obs event
  records it; a job that outlives its ``timeout`` fails with
  :class:`JobTimeout` and its worker is recycled; :meth:`drain`
  stops intake and waits for the queues to empty; :meth:`shutdown`
  drains (optionally) and retires the fleet.

A single dispatcher thread owns all worker pipes and queues; public
methods only touch the job table under one lock and wake the
dispatcher through a self-pipe.  With event tracing configured
(``obs=`` path/EventLog, or the harness's ``REPRO_OBS`` env knob)
the dispatcher emits ``job_dispatch`` / ``job_requeue`` /
``worker_warm`` events and a final ``service_status`` snapshot —
rendered by ``python -m repro.obs.report service``.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
import time
from collections import deque
from concurrent.futures import Future
from multiprocessing import connection as mpconnection
from typing import Deque, Dict, List, Optional

from repro.harness.parallel import OBS_ENV
from repro.obs.events import EventLog
from repro.service.store import ResultStore
from repro.service.worker import worker_main

#: dispatch attempts per job before a worker crash fails it for good
DEFAULT_MAX_ATTEMPTS = 2


class ServiceError(Exception):
    """Base class of every service-layer failure."""


class ServiceClosed(ServiceError):
    """Submission refused: the service is draining or shut down."""


class JobFailed(ServiceError):
    """The job raised in the worker, or its worker died repeatedly."""


class JobTimeout(ServiceError):
    """The job exceeded its requested wall-clock timeout."""


class JobSpec:
    """One unit of work: ``fn(arg)`` on some worker.

    ``fn`` must be an importable module-level callable and ``arg``
    one picklable argument (the ``map_jobs`` contract).  ``key`` is
    an optional content-hash identity (e.g.
    ``ResultCache.key_of(descriptor)``): jobs with equal keys
    deduplicate in flight and publish/serve through the shared
    store.  ``timeout`` is an optional per-job wall-clock budget in
    seconds.
    """

    __slots__ = ("fn", "arg", "key", "timeout")

    def __init__(self, fn, arg=None, key: Optional[str] = None,
                 timeout: Optional[float] = None):
        self.fn = fn
        self.arg = arg
        self.key = key
        self.timeout = timeout

    def __repr__(self):
        return ("JobSpec(%s, key=%s)"
                % (getattr(self.fn, "__name__", self.fn),
                   (self.key or "")[:12] or None))


class _Job:
    __slots__ = ("id", "spec", "future", "attempts", "deadline",
                 "timed_out")

    def __init__(self, job_id: int, spec: JobSpec, future: Future):
        self.id = job_id
        self.spec = spec
        self.future = future
        self.attempts = 0
        self.deadline: Optional[float] = None
        self.timed_out = False


class _Worker:
    __slots__ = ("wid", "process", "conn", "job_id", "jobs_done",
                 "warm_jobs", "queue", "stopping")

    def __init__(self, wid: int, process, conn):
        self.wid = wid
        self.process = process
        self.conn = conn
        self.job_id: Optional[int] = None
        self.jobs_done = 0
        self.warm_jobs = 0
        #: partitioned ownership: this worker's own job deque
        self.queue: Deque[int] = deque()
        self.stopping = False


class Service:
    """Persistent worker fleet + work-stealing dispatcher (see module).

    ``store`` is a :class:`ResultStore`, a directory path, or
    ``None``; ``obs`` is an :class:`EventLog`, a JSONL path, or
    ``None`` (default: the harness's ``REPRO_OBS`` env knob);
    ``context`` picks the multiprocessing start method (default:
    ``fork`` where available — a spawn fleet pays full interpreter
    imports per worker, which is exactly what the warm-vs-cold bench
    measures).
    """

    def __init__(self, workers: int = 2, store=None, obs=None,
                 context: Optional[str] = None,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS):
        if workers < 1:
            raise ValueError("a service needs at least one worker")
        if isinstance(store, str):
            store = ResultStore(store)
        self.store: Optional[ResultStore] = store
        if obs is None:
            obs = os.environ.get(OBS_ENV) or None
        self._log = EventLog(obs) if isinstance(obs, str) else obs
        if context is None:
            context = ("fork" if "fork"
                       in multiprocessing.get_all_start_methods()
                       else "spawn")
        self._ctx = multiprocessing.get_context(context)
        self._max_attempts = max_attempts
        self._lock = threading.RLock()
        self._jobs: Dict[int, _Job] = {}
        self._inflight: Dict[str, int] = {}
        self._workers: Dict[int, _Worker] = {}
        self._next_job = itertools.count(1)
        self._next_wid = itertools.count(1)
        self._draining = False
        self._closed = False
        self.counters: Dict[str, int] = dict.fromkeys(
            ("submitted", "dispatched", "completed", "failed",
             "deduped", "store_hits", "requeued", "crashes",
             "timeouts", "steals"), 0)
        self._wake_r, self._wake_w = os.pipe()
        os.set_blocking(self._wake_r, False)
        for _ in range(workers):
            self._spawn_worker()
        self._thread = threading.Thread(
            target=self._loop, name="repro-service-dispatch",
            daemon=True)
        self._thread.start()

    # -- submission API ------------------------------------------------------

    def submit(self, fn, arg=None, *, key: Optional[str] = None,
               timeout: Optional[float] = None) -> Future:
        """Queue one job; returns a future resolving to its result.

        ``fn`` may be a :class:`JobSpec` (then the other arguments
        are ignored).  Identical in-flight keys coalesce; keys
        already published in the store resolve without running.
        """
        spec = fn if isinstance(fn, JobSpec) else \
            JobSpec(fn, arg, key=key, timeout=timeout)
        with self._lock:
            if self._closed or self._draining:
                raise ServiceClosed(
                    "service is %s; no new submissions"
                    % ("closed" if self._closed else "draining"))
            self.counters["submitted"] += 1
            if spec.key is not None:
                inflight = self._inflight.get(spec.key)
                if inflight is not None:
                    # request batching/dedup: same cell already
                    # queued or running — share its future
                    self.counters["deduped"] += 1
                    return self._jobs[inflight].future
                if self.store is not None:
                    hit = self.store.get(spec.key)
                    if hit is not None:
                        self.counters["store_hits"] += 1
                        future: Future = Future()
                        future.set_result(hit)
                        return future
            job = _Job(next(self._next_job), spec, Future())
            self._jobs[job.id] = job
            if spec.key is not None:
                self._inflight[spec.key] = job.id
            self._enqueue(job.id)
        self._wake()
        return job.future

    def submit_many(self, specs) -> List[Future]:
        """Batch submission; one future per spec, order preserved."""
        return [self.submit(spec) for spec in specs]

    def map(self, fn, jobs, timeout: Optional[float] = None) -> List:
        """``map_jobs``-shaped blocking call: ``[fn(job) ...]``."""
        futures = [self.submit(fn, job, timeout=timeout)
                   for job in jobs]
        return [future.result() for future in futures]

    # -- lifecycle -----------------------------------------------------------

    def drain(self, poll: float = 0.01) -> None:
        """Stop intake and block until every accepted job finished."""
        with self._lock:
            self._draining = True
        self._wake()
        while True:
            with self._lock:
                if not self._jobs:
                    return
            time.sleep(poll)

    def shutdown(self, drain: bool = True,
                 timeout: float = 10.0) -> None:
        """Retire the fleet; with ``drain`` finish accepted work first."""
        if self._closed:
            return
        if drain:
            self.drain()
        with self._lock:
            self._closed = True
            self._draining = True
            # fail whatever drain=False left behind
            for job in self._jobs.values():
                if not job.future.done():
                    job.future.set_exception(
                        ServiceClosed("service shut down"))
            self._jobs.clear()
            self._inflight.clear()
        self._wake()
        self._thread.join(timeout)
        with self._lock:
            leftovers = list(self._workers.values())
            self._workers.clear()
        for worker in leftovers:
            if worker.process.is_alive():
                worker.process.terminate()
            worker.process.join(1.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        for fd in (self._wake_r, self._wake_w):
            try:
                os.close(fd)
            except OSError:
                pass
        if self._log is not None:
            self._log.emit("service_status", **self.status())
            self._log.flush()

    def __enter__(self) -> "Service":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown(drain=exc == (None, None, None))

    def status(self) -> dict:
        """Point-in-time snapshot: fleet, queues, counters, store."""
        with self._lock:
            workers = [{
                "wid": worker.wid,
                "pid": worker.process.pid,
                "alive": worker.process.is_alive(),
                "busy": worker.job_id is not None,
                "jobs_done": worker.jobs_done,
                "warm_jobs": worker.warm_jobs,
                "queued": len(worker.queue),
            } for worker in self._workers.values()]
            status = {
                "workers": workers,
                "queued": sum(len(w.queue)
                              for w in self._workers.values()),
                "running": sum(1 for w in self._workers.values()
                               if w.job_id is not None),
                "inflight_keys": len(self._inflight),
                "counters": dict(self.counters),
                "draining": self._draining,
                "closed": self._closed,
            }
            if self.store is not None:
                status["store"] = dict(self.store.stats(),
                                       path=self.store.path,
                                       entries=len(self.store))
            return status

    # -- internals (dispatcher thread unless noted) --------------------------

    def _wake(self) -> None:
        try:
            os.write(self._wake_w, b"x")
        except OSError:
            pass

    def _emit(self, ev: str, **fields) -> None:
        if self._log is not None:
            self._log.emit(ev, **fields)

    def _spawn_worker(self) -> _Worker:
        wid = next(self._next_wid)
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        store_dir = self.store.path if self.store is not None else None
        process = self._ctx.Process(
            target=worker_main, args=(wid, child_conn, store_dir),
            name="repro-worker-%d" % wid, daemon=True)
        process.start()
        child_conn.close()
        worker = _Worker(wid, process, parent_conn)
        self._workers[wid] = worker
        return worker

    def _enqueue(self, job_id: int, front: bool = False) -> None:
        """Partitioned ownership: append to the shortest deque."""
        target = min(self._workers.values(),
                     key=lambda w: len(w.queue))
        if front:
            target.queue.appendleft(job_id)
        else:
            target.queue.append(job_id)

    def _take_job_for(self, worker: _Worker) -> Optional[int]:
        """Own queue head first; else steal the longest queue's tail."""
        if worker.queue:
            return worker.queue.popleft()
        victim = None
        for other in self._workers.values():
            if other is worker or not other.queue:
                continue
            if victim is None or len(other.queue) > len(victim.queue):
                victim = other
        if victim is None:
            return None
        self.counters["steals"] += 1
        return victim.queue.pop()

    def _dispatch_ready(self) -> None:
        for worker in list(self._workers.values()):
            if worker.job_id is not None or worker.stopping:
                continue
            job_id = self._take_job_for(worker)
            if job_id is None:
                continue
            job = self._jobs.get(job_id)
            if job is None:
                continue
            job.attempts += 1
            job.deadline = (time.monotonic() + job.spec.timeout
                            if job.spec.timeout else None)
            worker.job_id = job_id
            self.counters["dispatched"] += 1
            self._emit("job_dispatch", job=job_id, worker=worker.wid,
                       attempt=job.attempts,
                       key=(job.spec.key or "")[:16] or None)
            try:
                worker.conn.send((job_id, job.spec.fn, job.spec.arg,
                                  job.spec.key))
            except (OSError, ValueError):
                self._on_worker_death(worker)

    def _on_conn_ready(self, worker: _Worker) -> None:
        try:
            msg = worker.conn.recv()
        except (EOFError, OSError):
            self._on_worker_death(worker)
            return
        job_id, status, payload, meta = msg
        worker.job_id = None
        worker.jobs_done += 1
        if meta.get("warm"):
            worker.warm_jobs += 1
        self._emit("worker_warm", worker=worker.wid, job=job_id,
                   warm=bool(meta.get("warm")),
                   seconds=meta.get("seconds"),
                   programs_cached=meta.get("programs_cached"))
        job = self._jobs.pop(job_id, None)
        if job is None:
            return  # timed out (already failed) or cancelled
        if job.spec.key is not None:
            self._inflight.pop(job.spec.key, None)
        if status == "ok":
            self.counters["completed"] += 1
            job.future.set_result(payload)
        else:
            self.counters["failed"] += 1
            job.future.set_exception(JobFailed(str(payload)))

    def _on_worker_death(self, worker: _Worker) -> None:
        if self._workers.pop(worker.wid, None) is None:
            return  # already handled via the other waitable
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.process.join(0.1)
        orphaned = list(worker.queue)
        worker.queue.clear()
        replacement = (self._spawn_worker()
                       if not self._closed else None)
        for job_id in orphaned:  # re-home the dead worker's backlog
            if self._workers:
                self._enqueue(job_id)
            else:  # closing with no fleet left: fail, don't strand
                job = self._jobs.pop(job_id, None)
                if job is not None and not job.future.done():
                    if job.spec.key is not None:
                        self._inflight.pop(job.spec.key, None)
                    job.future.set_exception(
                        ServiceClosed("service shut down"))
        job = (self._jobs.get(worker.job_id)
               if worker.job_id is not None else None)
        if job is None or job.timed_out:
            if worker.job_id is not None:
                self._jobs.pop(worker.job_id, None)
            return
        self.counters["crashes"] += 1
        exitcode = worker.process.exitcode
        if job.attempts >= self._max_attempts or replacement is None:
            self._jobs.pop(job.id, None)
            if job.spec.key is not None:
                self._inflight.pop(job.spec.key, None)
            self.counters["failed"] += 1
            job.future.set_exception(JobFailed(
                "worker died (exit %s) running job %d after %d "
                "attempt(s)" % (exitcode, job.id, job.attempts)))
        else:
            self.counters["requeued"] += 1
            self._emit("job_requeue", job=job.id, reason="crash",
                       worker=worker.wid, exitcode=exitcode,
                       attempt=job.attempts)
            self._enqueue(job.id, front=True)

    def _check_timeouts(self) -> None:
        now = time.monotonic()
        for worker in list(self._workers.values()):
            if worker.job_id is None:
                continue
            job = self._jobs.get(worker.job_id)
            if (job is None or job.deadline is None
                    or now < job.deadline or job.timed_out):
                continue
            job.timed_out = True
            self.counters["timeouts"] += 1
            self.counters["failed"] += 1
            self._jobs.pop(job.id, None)
            if job.spec.key is not None:
                self._inflight.pop(job.spec.key, None)
            job.future.set_exception(JobTimeout(
                "job %d exceeded its %.1fs timeout"
                % (job.id, job.spec.timeout)))
            # recycle the stuck worker; its sentinel resolves below
            worker.process.terminate()

    def _shutdown_idle_workers(self) -> None:
        for worker in list(self._workers.values()):
            if worker.stopping:
                continue
            if worker.job_id is not None:
                # its job was cancelled by shutdown(drain=False)
                if worker.job_id not in self._jobs:
                    worker.process.terminate()
                    worker.stopping = True
                continue
            worker.stopping = True
            try:
                worker.conn.send(None)
            except (OSError, ValueError):
                self._on_worker_death(worker)

    def _loop(self) -> None:
        while True:
            with self._lock:
                if self._closed:
                    self._shutdown_idle_workers()
                    if not self._workers:
                        break
                else:
                    self._dispatch_ready()
                waitables: List = [self._wake_r]
                by_conn: Dict = {}
                by_sentinel: Dict = {}
                deadline = None
                for worker in self._workers.values():
                    by_conn[worker.conn] = worker
                    by_sentinel[worker.process.sentinel] = worker
                    waitables.append(worker.conn)
                    waitables.append(worker.process.sentinel)
                    if worker.job_id is not None:
                        job = self._jobs.get(worker.job_id)
                        if job is not None and job.deadline is not None:
                            deadline = (job.deadline if deadline is None
                                        else min(deadline, job.deadline))
                if self._log is not None:
                    self._log.flush()
            timeout = (None if deadline is None
                       else max(0.0, deadline - time.monotonic()))
            try:
                ready = mpconnection.wait(waitables, timeout)
            except OSError:
                ready = []
            with self._lock:
                if self._wake_r in ready:
                    try:
                        while os.read(self._wake_r, 4096):
                            pass
                    except (BlockingIOError, OSError):
                        pass
                for obj in ready:
                    worker = by_conn.get(obj)
                    if (worker is not None
                            and worker.wid in self._workers):
                        self._on_conn_ready(worker)
                for obj in ready:
                    worker = by_sentinel.get(obj)
                    if (worker is not None
                            and worker.wid in self._workers):
                        self._on_worker_death(worker)
                self._check_timeouts()
        with self._lock:
            if self._log is not None:
                self._log.flush()
