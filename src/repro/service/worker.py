"""Daemon worker process: the long-lived half of the service.

A worker is one OS process that imports the simulator *once* and then
loops on its pipe: receive a job, run it, publish the result, report
back.  Everything expensive a per-invocation pool pays per sweep —
interpreter start, ``import repro``, MiniC compiles
(:data:`repro.harness.runner._program_cache`), generated probe
sources (per-geometry compiled by the fast memory model), superblock
fusion plans (the program-keyed ``_Plan`` cache) — stays resident
here across requests.  That residency is the service's whole point:
the second request for a workload skips compile and plan formation
entirely, which the per-job ``warm`` flag and the run's
``probe_compile``/``decode`` phase timers make observable.

Protocol (dispatcher → worker over a duplex pipe):

* ``(job_id, fn, arg, key)`` — run ``fn(arg)``.  ``fn`` must be an
  importable module-level callable (the same contract as
  ``ProcessPoolExecutor``); ``key`` is the job's content-hash store
  key or ``None``.
* ``None`` — graceful shutdown: finish nothing new, exit 0.

Worker → dispatcher: ``(job_id, status, payload, meta)`` where
``status`` is ``"ok"`` (payload = result) or ``"error"`` (payload =
the exception rendered as a string), and ``meta`` carries the warm
flag, wall seconds, and the resident program-cache size.  A worker
that *dies* instead of replying is detected by the dispatcher via
its process sentinel and the job is requeued.
"""

from __future__ import annotations

import time
from typing import Optional


def worker_main(wid: int, conn, store_dir: Optional[str]) -> None:
    """Worker process entry point (see module docstring)."""
    # import inside the worker so a spawn-context worker pays its
    # one-time import here, visibly, not lazily inside the first job
    from repro.harness import runner
    from repro.service.store import ResultStore

    store = ResultStore(store_dir) if store_dir else None
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if msg is None:
            break
        job_id, fn, arg, key = msg
        cached_before = len(runner._program_cache)
        t0 = time.perf_counter()
        try:
            result = fn(arg)
            status = "ok"
        except Exception as exc:
            result = "%s: %s" % (type(exc).__name__, exc)
            status = "error"
        meta = {
            # warm = this job compiled nothing new: every program it
            # needed was already resident from an earlier request
            "warm": len(runner._program_cache) == cached_before,
            "seconds": time.perf_counter() - t0,
            "programs_cached": len(runner._program_cache),
        }
        if status == "ok" and store is not None and key is not None:
            try:
                # concurrent publish is safe: tmp + atomic rename
                store.put(key, result, meta={"worker": wid})
            except Exception:
                pass  # publishing is best-effort; the reply stands
        try:
            conn.send((job_id, status, result, meta))
        except (BrokenPipeError, OSError):
            break
        except Exception as exc:  # unpicklable result
            conn.send((job_id, "error",
                       "result not picklable: %s" % exc, meta))
    try:
        conn.close()
    except OSError:
        pass
