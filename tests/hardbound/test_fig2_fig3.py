"""The paper's Figure 2 and Figure 3 semantics, executed literally.

Figure 2's example creates a 4-byte bounded pointer at 0x1000 and
shows which accesses pass and fail; Figure 3 defines propagation
through add and load/store.  We relocate the example onto the heap
(our 0x1000 is inside the null guard) — addresses are symbolic in the
original anyway.
"""

import pytest

from repro.isa import assemble
from repro.machine import (
    CPU,
    BoundsError,
    MachineConfig,
    NonPointerError,
    SafetyMode,
)
from repro.layout import HEAP_BASE

CFG = MachineConfig(mode=SafetyMode.FULL, timing=False)


def run_asm(source, config=CFG):
    cpu = CPU(assemble(source), config)
    result = cpu.run()
    return cpu, result


PRELUDE = """
    main:
        mov r1, 16
        sbrk r1                ; map one heap chunk
        mov r1, %d
        setbound r2, r1, 4     ; R2 <- {A; A; A+4}
""" % HEAP_BASE


def test_fig2_line3_inbounds_load_passes():
    cpu, _ = run_asm(PRELUDE + """
        load r3, [r2 + 2]      ; address A+2: check passes
        halt 0
    """)
    assert cpu.regs.value[3] == 0


def test_fig2_line4_out_of_bounds_load_fails():
    with pytest.raises(BoundsError) as exc:
        run_asm(PRELUDE + """
        load r3, [r2 + 5]      ; address A+5: check fails
        halt 0
        """)
    assert exc.value.addr == HEAP_BASE + 5
    assert exc.value.base == HEAP_BASE
    assert exc.value.bound == HEAP_BASE + 4


def test_fig2_line5_add_propagates_bounds():
    cpu, _ = run_asm(PRELUDE + """
        add r4, r2, 1          ; R4 <- {A+1; A; A+4}
        halt 0
    """)
    assert cpu.regs.value[4] == HEAP_BASE + 1
    assert cpu.regs.base[4] == HEAP_BASE
    assert cpu.regs.bound[4] == HEAP_BASE + 4


def test_fig2_line6_incremented_pointer_inbounds():
    run_asm(PRELUDE + """
        add r4, r2, 1
        load r5, [r4 + 2]      ; address A+3: passes
        halt 0
    """)


def test_fig2_line7_incremented_pointer_oob():
    with pytest.raises(BoundsError) as exc:
        run_asm(PRELUDE + """
        add r4, r2, 1
        load r5, [r4 + 5]      ; address A+6: fails
        halt 0
        """)
    assert exc.value.addr == HEAP_BASE + 6


def test_fig3b_add_prefers_first_bounded_input():
    cpu, _ = run_asm(PRELUDE + """
        mov r5, 2
        add r6, r2, r5         ; pointer + int: pointer bounds
        add r7, r5, r2         ; int + pointer: bounds from 2nd input
        halt 0
    """)
    for reg in (6, 7):
        assert cpu.regs.base[reg] == HEAP_BASE
        assert cpu.regs.bound[reg] == HEAP_BASE + 4


def test_fig3_sub_propagates():
    cpu, _ = run_asm(PRELUDE + """
        add r4, r2, 3
        sub r5, r4, 2          ; back inside
        load r6, [r5]
        halt 0
    """)
    assert cpu.regs.base[5] == HEAP_BASE


def test_fig3c_nonpointer_load_raises_in_full_mode():
    with pytest.raises(NonPointerError):
        run_asm("""
        main:
            mov r1, %d
            load r2, [r1]      ; raw integer dereference
            halt 0
        """ % HEAP_BASE)


def test_fig3d_nonpointer_store_raises_in_full_mode():
    with pytest.raises(NonPointerError):
        run_asm("""
        main:
            mov r1, 16
            sbrk r1
            mov r1, %d
            store [r1], r1
            halt 0
        """ % HEAP_BASE)


def test_fig3cd_store_then_load_roundtrips_metadata():
    """Storing a bounded pointer and loading it back keeps bounds."""
    cpu, _ = run_asm(PRELUDE + """
        mov r3, 16
        sbrk r3
        mov r3, %d
        setbound r3, r3, 8     ; a second object holding the pointer
        store [r3], r2         ; spill bounded pointer
        load r4, [r3]          ; reload it
        load r5, [r4 + 1]      ; use reloaded bounds: passes
        halt 0
    """ % (HEAP_BASE + 16))
    assert cpu.regs.base[4] == HEAP_BASE
    assert cpu.regs.bound[4] == HEAP_BASE + 4


def test_reloaded_pointer_still_checked():
    with pytest.raises(BoundsError):
        run_asm(PRELUDE + """
        mov r3, 16
        sbrk r3
        mov r3, %d
        setbound r3, r3, 8
        store [r3], r2
        load r4, [r3]
        load r5, [r4 + 4]      ; A+4 == bound: fails
        halt 0
        """ % (HEAP_BASE + 16))


def test_lower_bound_violation_detected():
    with pytest.raises(BoundsError):
        run_asm(PRELUDE + """
        load r3, [r2 - 1]
        halt 0
        """)


def test_nonpropagating_ops_strip_bounds():
    cpu, _ = run_asm(PRELUDE + """
        mul r3, r2, 1          ; multiply does not propagate
        xor r4, r2, 0
        halt 0
    """)
    assert not cpu.regs.is_pointer(3)
    assert not cpu.regs.is_pointer(4)


def test_malloc_only_mode_allows_unbounded_access():
    """Footnote 2: no bounds metadata -> no check performed."""
    cfg = MachineConfig(mode=SafetyMode.MALLOC_ONLY, timing=False)
    cpu, _ = run_asm("""
    main:
        mov r1, 16
        sbrk r1
        mov r1, %d
        store [r1], r1         ; raw pointer: unchecked in this mode
        load r2, [r1]
        halt 0
    """ % HEAP_BASE, cfg)
    assert cpu.regs.value[2] == HEAP_BASE


def test_malloc_only_mode_still_checks_bounded_pointers():
    cfg = MachineConfig(mode=SafetyMode.MALLOC_ONLY, timing=False)
    with pytest.raises(BoundsError):
        run_asm(PRELUDE + """
        load r3, [r2 + 5]
        halt 0
        """, cfg)
