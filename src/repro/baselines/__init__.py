"""Baseline spatial-safety schemes the paper compares against.

Three families (Section 2):

* :mod:`fatptr` — CCured-style software fat pointers, modelled as a
  cost-profile metadata engine on the plain core: explicit check
  instructions and disjoint-table metadata traffic (Figure 7's
  "CCured simulator" columns).
* :mod:`objtable` — the JK/RL/DA object-lookup approach with a *real*
  splay tree (:mod:`splay`) driven by the program's pointer events.
* :mod:`redzone` — Purify/Valgrind-style red-zone tripwires, used to
  demonstrate incompleteness (large overflows jump the zone).
"""

from repro.baselines.splay import SplayTree, SplayNode
from repro.baselines.objtable import ObjectTableModel
from repro.baselines.fatptr import SoftBoundEngine, ccured_sim_config
from repro.baselines.redzone import RedZoneChecker

__all__ = [
    "SplayTree",
    "SplayNode",
    "ObjectTableModel",
    "SoftBoundEngine",
    "ccured_sim_config",
    "RedZoneChecker",
]
