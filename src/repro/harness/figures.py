"""Reproduction of the paper's Figures 5, 6 and 7 as printable tables.

Each ``figure*_table`` function takes the measurement matrix from
:func:`repro.harness.runner.run_benchmark_matrix` and returns
``(headers, rows)`` where rows are lists of formatted cells;
:func:`format_table` renders them aligned.  The published numbers
quoted in Figure 7 are included as constants for side-by-side
comparison (they come from the paper itself and from the works it
cites — our simulator cannot re-measure a 2008 Pentium 4).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.harness.runner import BenchmarkRun, ENCODINGS

#: Figure 7's published/measured-on-real-hardware columns, quoted
#: verbatim from the paper (rows in figure order).
FIGURE7_PUBLISHED: Dict[str, Dict[str, float]] = {
    "bh": {"jkrlda": 1.00, "ccured_pub": 1.44, "p4": 1.33,
           "core2": 1.18, "opteron": 1.29, "cc_uops": 1.74,
           "cc_runtime": 1.72, "extern4": 1.22, "intern4": 1.22,
           "intern11": 1.14},
    "bisort": {"jkrlda": 1.00, "ccured_pub": 1.09, "p4": 1.09,
               "core2": 1.07, "opteron": 1.09, "cc_uops": 1.22,
               "cc_runtime": 1.20, "extern4": 1.01, "intern4": 1.02,
               "intern11": 1.02},
    "em3d": {"jkrlda": 1.68, "ccured_pub": 1.45, "p4": 1.51,
             "core2": 1.39, "opteron": 1.36, "cc_uops": 1.64,
             "cc_runtime": 1.31, "extern4": 1.18, "intern4": 1.04,
             "intern11": 1.02},
    "health": {"jkrlda": 1.44, "ccured_pub": 1.07, "p4": 0.99,
               "core2": 1.01, "opteron": 1.01, "cc_uops": 1.23,
               "cc_runtime": 1.11, "extern4": 1.17, "intern4": 1.20,
               "intern11": 1.15},
    "mst": {"jkrlda": 1.26, "ccured_pub": 1.87, "p4": 1.12,
            "core2": 1.05, "opteron": 1.09, "cc_uops": 1.39,
            "cc_runtime": 1.06, "extern4": 1.16, "intern4": 1.07,
            "intern11": 1.05},
    "perimeter": {"jkrlda": 0.99, "ccured_pub": 1.10, "p4": 1.22,
                  "core2": 1.25, "opteron": 1.32, "cc_uops": 1.58,
                  "cc_runtime": 1.51, "extern4": 1.02, "intern4": 1.01,
                  "intern11": 1.01},
    "power": {"jkrlda": 1.00, "ccured_pub": 1.29, "p4": 1.21,
              "core2": 1.02, "opteron": 1.10, "cc_uops": 1.80,
              "cc_runtime": 1.79, "extern4": 1.05, "intern4": 1.05,
              "intern11": 1.05},
    "treeadd": {"jkrlda": 0.98, "ccured_pub": 1.15, "p4": 1.19,
                "core2": 1.18, "opteron": 1.03, "cc_uops": 1.16,
                "cc_runtime": 1.09, "extern4": 1.03, "intern4": 1.03,
                "intern11": 1.03},
    "tsp": {"jkrlda": 1.03, "ccured_pub": 1.06, "p4": 0.96,
            "core2": 1.00, "opteron": 1.00, "cc_uops": 1.09,
            "cc_runtime": 1.07, "extern4": 1.02, "intern4": 1.01,
            "intern11": 1.01},
}

#: the paper's reported averages (last row of Figure 7)
FIGURE7_PUBLISHED_AVERAGE = {
    "jkrlda": 1.13, "ccured_pub": 1.26, "p4": 1.17, "core2": 1.12,
    "opteron": 1.14, "cc_uops": 1.40, "cc_runtime": 1.29,
    "extern4": 1.09, "intern4": 1.07, "intern11": 1.05,
}


def format_table(headers: List[str], rows: List[List[str]],
                 title: str = "") -> str:
    """Align a headers+rows table for terminal output."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    fmt = "  ".join("%%-%ds" % w for w in widths)
    lines.append(fmt % tuple(headers))
    lines.append(fmt % tuple("-" * w for w in widths))
    for row in rows:
        lines.append(fmt % tuple(row))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 5: runtime overhead breakdown
# ---------------------------------------------------------------------------

def figure5_breakdown(bench: BenchmarkRun,
                      encoding: str) -> Dict[str, float]:
    """The four stacked segments of one Figure 5 bar, as fractions of
    baseline runtime."""
    base = bench.base
    run = bench.encodings[encoding]
    base_cycles = base.cycles
    setbound_frac = (run.instructions - base.instructions) / base_cycles
    meta_uops_frac = run.hb_stats.meta_uops / base_cycles
    meta_stall_frac = run.mem_stats.metadata_stall_cycles() / base_cycles
    pollution = (run.mem_stats["data"].stall_cycles
                 - base.mem_stats["data"].stall_cycles) / base_cycles
    total = run.cycles / base_cycles - 1.0
    return {
        "setbound": setbound_frac,
        "meta_uops": meta_uops_frac,
        "meta_stall": meta_stall_frac,
        "pollution": max(pollution, 0.0),
        "total": total,
    }


def figure5_table(matrix: Dict[str, BenchmarkRun],
                  encodings: Iterable[str] = ENCODINGS
                  ) -> Tuple[List[str], List[List[str]]]:
    """Figure 5: per-benchmark, per-encoding overhead breakdown."""
    headers = ["benchmark", "encoding", "setbound", "meta-uops",
               "meta-stall", "pollution", "total-overhead"]
    rows = []
    sums = {enc: 0.0 for enc in encodings}
    for name, bench in matrix.items():
        for enc in encodings:
            seg = figure5_breakdown(bench, enc)
            sums[enc] += seg["total"]
            rows.append([name, enc,
                         "%.1f%%" % (100 * seg["setbound"]),
                         "%.1f%%" % (100 * seg["meta_uops"]),
                         "%.1f%%" % (100 * seg["meta_stall"]),
                         "%.1f%%" % (100 * seg["pollution"]),
                         "%.1f%%" % (100 * seg["total"])])
    n = len(matrix)
    for enc in encodings:
        rows.append(["average", enc, "", "", "", "",
                     "%.1f%%" % (100 * sums[enc] / n)])
    return headers, rows


# ----------------------------------------------------------------------------
# Figure 6: memory (distinct pages) overhead
# ----------------------------------------------------------------------------

def figure6_table(matrix: Dict[str, BenchmarkRun],
                  encodings: Iterable[str] = ENCODINGS
                  ) -> Tuple[List[str], List[List[str]]]:
    """Figure 6: extra distinct 4KB pages vs. baseline, split into tag
    and base/bound metadata."""
    headers = ["benchmark", "encoding", "tag-pages", "bb-pages",
               "extra-pages"]
    rows = []
    sums = {enc: 0.0 for enc in encodings}
    for name, bench in matrix.items():
        for enc in encodings:
            pages = bench.page_overhead(enc)
            sums[enc] += pages["total"]
            rows.append([name, enc,
                         "%.1f%%" % (100 * pages["tag"]),
                         "%.1f%%" % (100 * pages["shadow"]),
                         "%.1f%%" % (100 * pages["total"])])
    n = len(matrix)
    for enc in encodings:
        rows.append(["average", enc, "", "",
                     "%.1f%%" % (100 * sums[enc] / n)])
    return headers, rows


# ----------------------------------------------------------------------------
# Figure 7: comparison table
# ----------------------------------------------------------------------------

def figure7_table(matrix: Dict[str, BenchmarkRun]
                  ) -> Tuple[List[str], List[List[str]]]:
    """Figure 7: JK/RL/DA and CCured baselines vs. HardBound.

    "(pub)" columns quote the paper verbatim; "(sim)" columns are
    measured on our simulator.
    """
    headers = ["benchmark",
               "JK/RL/DA(pub)", "JK/RL/DA(sim)",
               "CCured(pub)", "CCured-uops(pub)", "CCured-uops(sim)",
               "CCured-run(pub)", "CCured-run(sim)",
               "ext4(pub)", "ext4(sim)",
               "int4(pub)", "int4(sim)",
               "int11(pub)", "int11(sim)"]
    rows = []
    acc = [0.0] * 13
    for name, bench in matrix.items():
        pub = FIGURE7_PUBLISHED[name]
        vals = [pub["jkrlda"], bench.objtable_runtime_overhead(),
                pub["ccured_pub"],
                pub["cc_uops"], bench.ccured_uop_overhead(),
                pub["cc_runtime"], bench.ccured_runtime_overhead(),
                pub["extern4"], bench.overhead("extern4"),
                pub["intern4"], bench.overhead("intern4"),
                pub["intern11"], bench.overhead("intern11")]
        for i, v in enumerate(vals):
            acc[i] += v
        rows.append([name] + ["%.2f" % v for v in vals])
    n = len(matrix)
    rows.append(["average"] + ["%.2f" % (v / n) for v in acc])
    return headers, rows


# ---------------------------------------------------------------------------
# Section 5.4 ablation: bounds check as an explicit µop
# ---------------------------------------------------------------------------

def check_uop_ablation_table(matrix: Dict[str, BenchmarkRun],
                             matrix_uop: Dict[str, BenchmarkRun],
                             encodings: Iterable[str] = ENCODINGS
                             ) -> Tuple[List[str], List[List[str]]]:
    """Extra overhead when uncompressed-pointer checks cost a µop."""
    headers = ["benchmark", "encoding", "parallel-check", "check-uop",
               "delta"]
    rows = []
    deltas = {enc: 0.0 for enc in encodings}
    for name in matrix:
        for enc in encodings:
            par = matrix[name].overhead(enc)
            uop = matrix_uop[name].overhead(enc)
            deltas[enc] += uop - par
            rows.append([name, enc, "%.3f" % par, "%.3f" % uop,
                         "+%.1f%%" % (100 * (uop - par))])
    n = len(matrix)
    for enc in encodings:
        rows.append(["average", enc, "", "",
                     "+%.1f%%" % (100 * deltas[enc] / n)])
    return headers, rows
