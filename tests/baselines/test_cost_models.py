"""Software-baseline cost models: CCured-sim engine and object table."""

from repro.baselines import ObjectTableModel, SoftBoundEngine
from repro.baselines.fatptr import ccured_sim_config
from repro.harness.runner import run_workload
from repro.machine import CPU, MachineConfig
from repro.minic import compile_program

SRC = """
int main() {
    int *a = (int*)malloc(16 * sizeof(int));
    int sum = 0;
    for (int i = 0; i < 16; i++) { a[i] = i; }
    for (int i = 0; i < 16; i++) { sum += a[i]; }
    return sum & 127;
}
"""


class TestSoftBoundEngine:
    def test_config_uses_engine(self):
        cfg = ccured_sim_config(timing=False)
        program = compile_program(SRC)
        cpu = CPU(program, cfg)
        assert isinstance(cpu.hb, SoftBoundEngine)
        result = cpu.run()
        assert result.exit_code == sum(range(16)) & 127

    def test_checks_cost_explicit_uops(self):
        cfg = ccured_sim_config(timing=False)
        result = CPU(compile_program(SRC), cfg).run()
        assert result.hb_stats.check_uops > 0
        assert result.uops > result.instructions

    def test_no_tag_traffic(self):
        """Pointer-ness is static in CCured: no tag space probes."""
        cfg = ccured_sim_config(timing=True)
        result = CPU(compile_program(SRC), cfg).run()
        assert result.mem_stats["tag"].accesses == 0

    def test_more_expensive_than_hardbound(self):
        hb = CPU(compile_program(SRC),
                 MachineConfig.hardbound(timing=False)).run()
        cc = CPU(compile_program(SRC),
                 ccured_sim_config(timing=False)).run()
        assert cc.uops > hb.uops

    def test_semantics_identical_to_hardbound(self):
        hb = CPU(compile_program(SRC),
                 MachineConfig.hardbound(timing=False)).run()
        cc = CPU(compile_program(SRC),
                 ccured_sim_config(timing=False)).run()
        assert hb.exit_code == cc.exit_code
        assert hb.output == cc.output


class TestObjectTableModel:
    def test_observes_allocations_and_arithmetic(self):
        model = ObjectTableModel()
        result = run_workload("treeadd",
                              MachineConfig.hardbound(timing=False),
                              observer=model)
        assert result.exit_code == 0
        assert model.tree.size > 500          # one entry per tree node
        assert model.arith_events > 0
        assert model.extra_uops > 0

    def test_objects_registered_once(self):
        model = ObjectTableModel()
        model.on_setbound(0x1000, 16)
        size_after_first = model.tree.size
        model.on_setbound(0x1000, 16)         # decay re-setbound
        assert model.tree.size == size_after_first

    def test_elision_reduces_cost(self):
        eager = ObjectTableModel(elide_fraction=0.0)
        lazy = ObjectTableModel(elide_fraction=0.95)
        for model in (eager, lazy):
            model.on_setbound(0x1000, 16)
            for _ in range(100):
                model.on_pointer_arith(0x1004)
        assert lazy.extra_uops < eager.extra_uops

    def test_overhead_vs(self):
        model = ObjectTableModel()
        model.extra_uops = 500
        assert model.overhead_vs(1000) == 1.5
        assert model.overhead_vs(0) == 1.0
