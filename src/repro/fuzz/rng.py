"""Seed plumbing: every randomized test and fuzzer is reproducible.

The contract (ISSUE 8 satellite): any randomized program — a fuzzer
seed, a randomized differential test, an attack-corpus draw — derives
its :class:`random.Random` through :func:`fuzz_rng`, and any failure
message prints the concrete seed.  Re-running with
``REPRO_FUZZ_SEED=<seed>`` forces that exact program back,
regardless of which parametrized case or shard originally drew it.
"""

from __future__ import annotations

import os
import random
from typing import Optional, Tuple

#: environment override: forces every :func:`fuzz_rng` call to this
#: seed (accepts any ``int()`` literal, e.g. ``0xC0DE`` or ``1234``)
FUZZ_SEED_ENV = "REPRO_FUZZ_SEED"


def resolve_seed(default: int) -> int:
    """The effective seed: ``REPRO_FUZZ_SEED`` when set, else default."""
    raw = os.environ.get(FUZZ_SEED_ENV)
    if raw is None or raw == "":
        return default
    try:
        return int(raw, 0)
    except ValueError:
        raise ValueError(
            "%s=%r is not an integer seed" % (FUZZ_SEED_ENV, raw))


def fuzz_rng(default_seed: int) -> Tuple[random.Random, int]:
    """A seeded RNG plus the seed it actually used.

    Returns ``(rng, seed)`` so call sites can stamp the seed into
    failure messages / events: ``REPRO_FUZZ_SEED=<seed>`` then
    reproduces the exact program.
    """
    seed = resolve_seed(default_seed)
    return random.Random(seed), seed


def seed_banner(seed: int, what: str = "program") -> str:
    """One-line reproduction hint for assertion/divergence messages."""
    return ("reproduce this %s with %s=%d" % (what, FUZZ_SEED_ENV, seed))


def spawn(rng: random.Random) -> random.Random:
    """An independent child RNG drawn from ``rng`` (stable split)."""
    return random.Random(rng.getrandbits(64))


def shard_ranges(start: int, count: int,
                 shards: int) -> list:
    """Partition seed range ``[start, start+count)`` into contiguous
    per-shard ``(lo, hi)`` slices (the fuzz CLI's work distribution).

    Every seed lands in exactly one shard; empty shards are dropped,
    so the result may be shorter than ``shards``.
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    shards = max(1, shards)
    base, extra = divmod(count, shards)
    out = []
    lo = start
    for i in range(shards):
        size = base + (1 if i < extra else 0)
        if size:
            out.append((lo, lo + size))
        lo += size
    return out


def seed_range(lo: int, hi: int, cap: Optional[int] = None):
    """Iterate seeds of one shard, optionally capped (smoke budgets)."""
    stop = hi if cap is None else min(hi, lo + cap)
    return range(lo, stop)
