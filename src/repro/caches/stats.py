"""Per-access-kind statistics collected by the memory system."""

from __future__ import annotations

from typing import Dict, Set

#: Access kinds distinguished by the timing model.  "data" is ordinary
#: program traffic, "shadow" the base/bound metadata (Section 4.1),
#: "tag" the tag-bit metadata (Section 4.2), "soft" the disjoint table
#: of the software fat-pointer baseline (ordinary data traffic to the
#: core, but separated for reporting).
KINDS = ("data", "shadow", "tag", "soft")

#: Granularity for the Figure 6 distinct-page metric.  The paper uses
#: 4KB pages on full-size Olden inputs; our inputs are ~100x smaller,
#: so 4KB pages would quantize every metadata region to one page and
#: destroy the tag/shadow/data density ratios the figure is about.
#: 256-byte micro-pages preserve the geometry (one tag micro-page
#: covers 8KB of data = the same 3% footprint as the paper's 1 bit
#: per 32-bit word).
FIG_PAGE_SHIFT = 8


class KindStats:
    """Counters for one access kind."""

    __slots__ = ("accesses", "l1_misses", "l2_misses", "tlb_misses",
                 "stall_cycles", "pages")

    def __init__(self):
        self.accesses = 0
        self.l1_misses = 0
        self.l2_misses = 0
        self.tlb_misses = 0
        self.stall_cycles = 0
        self.pages: Set[int] = set()

    def touch_page(self, addr: int) -> None:
        self.pages.add(addr >> FIG_PAGE_SHIFT)

    def as_dict(self) -> Dict[str, int]:
        return {
            "accesses": self.accesses,
            "l1_misses": self.l1_misses,
            "l2_misses": self.l2_misses,
            "tlb_misses": self.tlb_misses,
            "stall_cycles": self.stall_cycles,
            "distinct_pages": len(self.pages),
        }


class AccessStats:
    """Statistics for every kind plus convenience aggregates."""

    def __init__(self):
        self.kinds: Dict[str, KindStats] = {k: KindStats() for k in KINDS}

    def __getitem__(self, kind: str) -> KindStats:
        return self.kinds[kind]

    def total_stall_cycles(self) -> int:
        return sum(k.stall_cycles for k in self.kinds.values())

    def metadata_stall_cycles(self) -> int:
        """Stalls attributable to HardBound metadata (tag + shadow)."""
        return (self.kinds["tag"].stall_cycles
                + self.kinds["shadow"].stall_cycles)

    def distinct_pages(self, kind: str) -> int:
        return len(self.kinds[kind].pages)

    def as_dict(self) -> Dict[str, Dict[str, int]]:
        return {k: v.as_dict() for k, v in self.kinds.items()}
