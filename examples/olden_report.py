#!/usr/bin/env python3
"""Run the Olden suite and print the paper's Figures 5-7.

This is the full Section 5 evaluation in one command (about a minute
of simulation).  Pass benchmark names to restrict the set:

    python examples/olden_report.py            # all nine
    python examples/olden_report.py mst em3d   # a subset
"""

import sys

from repro.harness import (
    figure5_table,
    figure6_table,
    figure7_table,
    format_table,
    run_benchmark_matrix,
)
from repro.workloads import WORKLOADS


def main(argv):
    names = argv[1:] or None
    if names:
        unknown = [n for n in names if n not in WORKLOADS]
        if unknown:
            raise SystemExit("unknown workloads: %s (have: %s)"
                             % (", ".join(unknown),
                                ", ".join(WORKLOADS)))
    print("Running the measurement matrix (9 workloads x 6 configs)..."
          if not names else
          "Running %d workload(s) x 6 configs..." % len(names))
    matrix = run_benchmark_matrix(workloads=names)

    for builder, title in ((figure5_table,
                            "Figure 5: runtime overhead breakdown"),
                           (figure6_table,
                            "Figure 6: extra distinct pages"),
                           (figure7_table,
                            "Figure 7: comparison vs software schemes")):
        headers, rows = builder(matrix)
        print()
        print(format_table(headers, rows, title))


if __name__ == "__main__":
    main(sys.argv)
