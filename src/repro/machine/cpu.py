"""In-order core executing one micro-operation per cycle.

The core implements the paper's simulated processor (Section 5.1):

* one µop per cycle; each ISA instruction is one µop, and loads or
  stores of *uncompressed* bounded pointers insert one additional µop
  (charged by the :class:`~repro.hardbound.engine.HardBoundEngine`);
* bounds checks run on a dedicated parallel ALU and are free unless
  the ``check_uop`` ablation is enabled;
* register-to-register metadata propagation follows Figure 3A/B:
  ``mov``/``lea``/``add``/``sub`` propagate, everything else clears;
* memory operations perform the implicit check of Figure 3C/D through
  the metadata of the operand's pointer register.

Total runtime = µops executed + memory-system stall cycles.
"""

from __future__ import annotations

import weakref
from time import perf_counter
from typing import Callable, Dict, List, Optional

from repro.caches.fast import FastMemorySystem
from repro.caches.hierarchy import CacheParams, MemorySystem
from repro.hardbound.engine import HardBoundEngine
from repro.isa.opcodes import Op, REG_FP, REG_RA, REG_SP
from repro.isa.program import Program
from repro.layout import (
    GLOBAL_BASE,
    MASK32,
    MAXINT,
    STACK_TOP,
    to_signed,
)
from repro.machine.config import (
    ENGINE_BLOCKS,
    ENGINE_DECODED,
    ENGINE_SUPERBLOCKS,
    MachineConfig,
    SafetyMode,
)
from repro.machine.errors import (
    AbortError,
    DivideByZeroError,
    HaltSignal,
    InstructionLimitExceeded,
    InvalidCodePointerError,
    MemoryFault,
    Trap,
)
from repro.machine.memory import Memory
from repro.machine.registers import RegisterFile
from repro.metadata.encodings import get_encoding
from repro.obs.events import EventLog
from repro.obs.manifest import run_manifest
from repro.obs.metrics import PhaseTimers


class RunResult:
    """Outcome of a completed (halted) run.

    Only statistics snapshots are kept: a long matrix sweep holds many
    results, and pinning every CPU's memory image and caches through
    them bloats the sweep.  :attr:`cpu` therefore resolves through a
    weak reference by default; runs that want to inspect machine state
    afterwards opt in with ``MachineConfig(retain_cpu=True)``.
    """

    def __init__(self, cpu: "CPU", exit_code: int):
        self.exit_code = exit_code
        self.instructions = cpu.icount
        self.uops = cpu.uop_count()
        self.stall_cycles = (cpu.memsys.stats.total_stall_cycles()
                             if cpu.memsys else 0)
        self.cycles = self.uops + self.stall_cycles
        self.output = "".join(cpu.output)
        self.hb_stats = cpu.hb.stats if cpu.hb else None
        self.mem_stats = cpu.memsys.stats if cpu.memsys else None
        self.setbound_uops = cpu.setbound_count
        #: engine-introspection snapshot (traces formed, side-exit
        #: rate, fallback single-steps, ...); ``None`` for engines
        #: that record none — the key schema per tier is frozen in
        #: repro.obs.schema
        self.engine_stats = getattr(cpu, "engine_stats", None)
        #: cumulative phase seconds ({"decode": ..., "execute": ...};
        #: see repro.obs.metrics.PhaseTimers for the phase contract)
        self.phases = cpu.timers.snapshot()
        #: run manifest: knobs, engine, cache geometry, git sha, host
        #: (repro.obs.manifest) — the provenance of every statistic
        self.manifest = cpu.manifest
        self._cpu_strong = cpu if cpu.config.retain_cpu else None
        self._cpu_weak = weakref.ref(cpu)

    @property
    def cpu(self) -> "CPU":
        """The CPU that produced this result, if still alive.

        Raises :class:`ReferenceError` once the CPU has been
        collected; configure the run with ``retain_cpu=True`` to keep
        it reachable through the result.
        """
        if self._cpu_strong is not None:
            return self._cpu_strong
        cpu = self._cpu_weak() if self._cpu_weak is not None else None
        if cpu is None:
            raise ReferenceError(
                "RunResult no longer references its CPU; run with "
                "MachineConfig(retain_cpu=True) to keep machine state "
                "inspectable after the run")
        return cpu

    def __getstate__(self):
        # weakrefs cannot be pickled; results travel between harness
        # worker processes as pure statistics snapshots.
        state = dict(self.__dict__)
        state["_cpu_strong"] = None
        state["_cpu_weak"] = None
        return state

    def __repr__(self):
        return ("RunResult(exit=%d, instrs=%d, uops=%d, cycles=%d)"
                % (self.exit_code, self.instructions, self.uops,
                   self.cycles))

    def summary(self) -> str:
        """Multi-line human-readable run report."""
        lines = [
            "exit code:     %d" % self.exit_code,
            "instructions:  %d" % self.instructions,
            "uops:          %d" % self.uops,
            "stall cycles:  %d" % self.stall_cycles,
            "total cycles:  %d" % self.cycles,
        ]
        if self.hb_stats is not None:
            stats = self.hb_stats
            lines += [
                "bounds checks: %d" % stats.checks,
                "setbounds:     %d" % stats.setbound_uops,
                "pointer ld/st: %d/%d (%.0f%% compressed)"
                % (stats.pointer_loads, stats.pointer_stores,
                   100 * stats.compression_ratio()),
            ]
        if self.mem_stats is not None:
            lines.append(
                "pages (data/tag/shadow): %d/%d/%d"
                % (self.mem_stats.distinct_pages("data"),
                   self.mem_stats.distinct_pages("tag"),
                   self.mem_stats.distinct_pages("shadow")))
        return "\n".join(lines)


class CPU:
    """The simulated core.

    Construct with a linked :class:`~repro.isa.program.Program` and a
    :class:`~repro.machine.config.MachineConfig`; call :meth:`run`.
    Traps propagate as exceptions; ``halt`` produces a
    :class:`RunResult`.
    """

    def __init__(self, program: Program, config: MachineConfig = None,
                 cache_params: CacheParams = None):
        self.program = program
        self.config = config or MachineConfig()
        self.regs = RegisterFile()
        self.memory = Memory(self.config.stack_size)
        self.memory.load_image(program.data_image)
        self.output: List[str] = []
        self.icount = 0
        self.setbound_count = 0
        self.pc = program.entry

        #: per-run phase timers (decode / cfg_fusion /
        #: trace_formation / probe_compile / execute); snapshot
        #: travels on RunResult.phases
        self.timers = PhaseTimers()

        self.hb_enabled = self.config.mode is not SafetyMode.OFF
        self.full_mode = self.config.mode is SafetyMode.FULL
        encoding = get_encoding(self.config.encoding)
        if self.config.timing:
            params = cache_params or CacheParams()
            if cache_params is None:
                params.tag_cache_size = encoding.tag_cache_size
            # the block-fusion engines pair with the fast timing
            # model; both models are counter-identical (tests/caches)
            memsys_cls = (FastMemorySystem
                          if self.config.engine in (ENGINE_BLOCKS,
                                                    ENGINE_SUPERBLOCKS)
                          else MemorySystem)
            # constructing the fast model compiles its per-geometry
            # probe sources (process-cached: later CPUs re-enter in
            # microseconds, the first pays the compile)
            t0 = perf_counter()
            self.memsys: Optional[MemorySystem] = memsys_cls(params)
            self.timers.add("probe_compile", perf_counter() - t0)
        else:
            self.memsys = None
        self.manifest = run_manifest(
            self.config, self.memsys.params if self.memsys else None)
        obs = self.config.obs_events
        if obs:
            #: opt-in event log; a path string means this CPU owns
            #: (and flushes) the log, an EventLog instance is shared
            #: and left to its owner
            self._obs_owned = not isinstance(obs, EventLog)
            self.obs: Optional[EventLog] = (
                EventLog(str(obs)) if self._obs_owned else obs)
        else:
            self.obs = None
            self._obs_owned = False
        if self.hb_enabled:
            factory = self.config.engine_factory or HardBoundEngine
            self.hb: Optional[HardBoundEngine] = factory(
                encoding, self.memsys, self.config.check_uop,
                self.config.check_access_extent)
        else:
            self.hb = None

        if self.config.temporal and self.hb_enabled:
            from repro.hardbound.temporal import TemporalTracker
            self.temporal: Optional[object] = TemporalTracker()
        else:
            self.temporal = None

        #: optional event observer for baseline cost models; methods:
        #: on_setbound(value, size), on_mem(ea, size, write),
        #: on_pointer_arith()
        self.observer = None
        #: set by instrumentation (e.g. Tracer) that wraps the legacy
        #: dispatch table and therefore needs the legacy run loop
        self.force_legacy = False
        self._init_stack()
        self._dispatch = self._build_dispatch()

    def _init_stack(self) -> None:
        """Reset ``sp`` to the stack top.

        Like the paper's x86 target, the stack/frame pointers are not
        bounded pointers: frame-relative accesses are compiler-owned
        and statically safe (fixed offsets into the function's own
        frame), so they are exempt from the non-pointer check in
        :meth:`_mem_check`.  Pointers the program creates to stack
        objects are bounded by compiler-inserted ``setbound``.
        """
        self.regs.set(REG_SP, STACK_TOP)

    # -- accounting --------------------------------------------------------

    def uop_count(self) -> int:
        extra = self.hb.stats.extra_uops() if self.hb else 0
        return self.icount + extra

    # -- run loop -----------------------------------------------------------

    def run(self) -> RunResult:
        """Execute until ``halt``; traps raise annotated exceptions.

        Dispatches to the engine selected by ``config.engine``: the
        superblock trace engine (default), the basic-block fusion
        engine, the pre-decoded closure-threaded engine, or the
        legacy per-instruction dispatch loop.  All are bit-identical
        in results and trap behaviour.  With ``config.obs_events``
        set, the run's manifest, statistics and phase times are
        emitted as ``run_start``/``run_end`` (or ``run_abort``)
        events around the engine's own event stream.
        """
        obs = self.obs
        if obs is None:
            return self._dispatch_engine()
        obs.emit("run_start", manifest=self.manifest)
        try:
            result = self._dispatch_engine()
        except BaseException as exc:
            obs.emit("run_abort", error=type(exc).__name__,
                     message=str(exc), pc=self.pc,
                     instructions=self.icount,
                     phases=self.timers.snapshot())
            if self._obs_owned:
                obs.flush()
            raise
        obs.emit("run_end", exit_code=result.exit_code,
                 instructions=result.instructions, uops=result.uops,
                 stall_cycles=result.stall_cycles,
                 cycles=result.cycles, phases=result.phases,
                 engine_stats=result.engine_stats)
        if self._obs_owned:
            obs.flush()
        return result

    def _dispatch_engine(self) -> RunResult:
        if not self.force_legacy:
            if self.config.engine == ENGINE_SUPERBLOCKS:
                from repro.machine.blocks import execute_superblocks
                return execute_superblocks(self)
            if self.config.engine == ENGINE_DECODED:
                from repro.machine.decode import execute_decoded
                return execute_decoded(self)
            if self.config.engine == ENGINE_BLOCKS:
                from repro.machine.blocks import execute_blocks
                return execute_blocks(self)
        return self._run_legacy()

    def _run_legacy(self) -> RunResult:
        """The original fetch/dispatch interpreter loop."""
        instrs = self.program.instrs
        dispatch = self._dispatch
        limit = self.config.max_instructions
        pc = self.pc
        n = len(instrs)
        t0 = perf_counter()
        timed = False
        try:
            while True:
                if pc >= n or pc < 0:
                    raise MemoryFault(pc, "fetch")
                instr = instrs[pc]
                self.pc = pc
                self.icount += 1
                if self.icount > limit:
                    raise InstructionLimitExceeded(limit)
                npc = dispatch[instr.op](instr)
                pc = pc + 1 if npc is None else npc
        except HaltSignal as halt:
            # the phase must land before RunResult snapshots it
            self.timers.add("execute", perf_counter() - t0)
            timed = True
            self.pc = pc
            return RunResult(self, halt.code)
        except Trap as trap:
            raise trap.at(self.pc)
        finally:
            if not timed:
                self.timers.add("execute", perf_counter() - t0)

    # -- helpers ---------------------------------------------------------

    def _operand2(self, instr) -> int:
        rt = instr.rt
        return self.regs.value[rt] if rt is not None else (instr.imm or 0)

    def _effective_address(self, instr) -> int:
        ea = instr.disp
        if instr.rs is not None:
            ea += self.regs.value[instr.rs]
        if instr.rt is not None:
            ea += self.regs.value[instr.rt] * instr.scale
        return ea & MASK32

    def _mem_pointer_reg(self, instr) -> Optional[int]:
        """Which operand register's metadata guards this access.

        x86-style: prefer the base register; fall back to the index
        register when only it carries bounds (Figure 3B preference
        order applied to memory operands).
        """
        rs, rt = instr.rs, instr.rt
        if rs is not None and (self.regs.base[rs] or self.regs.bound[rs]):
            return rs
        if rt is not None and (self.regs.base[rt] or self.regs.bound[rt]):
            return rt
        return rs if rs is not None else rt

    def _data_access(self, addr: int, size: int, write: bool) -> None:
        if self.memsys is not None:
            self.memsys.access(addr, size, write, "data")

    # -- ALU handlers ------------------------------------------------------

    def _op_mov(self, instr) -> None:
        regs = self.regs
        rd = instr.rd
        if instr.rs is not None:
            regs.value[rd] = regs.value[instr.rs]
            regs.base[rd] = regs.base[instr.rs]
            regs.bound[rd] = regs.bound[instr.rs]
        else:
            regs.value[rd] = (instr.imm or 0) & MASK32
            regs.base[rd] = 0
            regs.bound[rd] = 0

    def _op_xchg(self, instr) -> None:
        """Swap two registers, metadata included (Section 3.1)."""
        regs = self.regs
        rd, rs = instr.rd, instr.rs
        regs.value[rd], regs.value[rs] = regs.value[rs], regs.value[rd]
        regs.base[rd], regs.base[rs] = regs.base[rs], regs.base[rd]
        regs.bound[rd], regs.bound[rs] = \
            regs.bound[rs], regs.bound[rd]

    def _op_lea(self, instr) -> None:
        """lea computes an address and propagates pointer metadata."""
        regs = self.regs
        rd = instr.rd
        src = self._mem_pointer_reg(instr)
        ea = self._effective_address(instr)
        if src is not None:
            regs.base[rd] = regs.base[src]
            regs.bound[rd] = regs.bound[src]
        else:
            regs.base[rd] = 0
            regs.bound[rd] = 0
        regs.value[rd] = ea

    def _op_add(self, instr) -> None:
        regs = self.regs
        rd, rs, rt = instr.rd, instr.rs, instr.rt
        value = (regs.value[rs] + self._operand2(instr)) & MASK32
        # Figure 3A/B: prefer the first input's bounds when present.
        if regs.base[rs] or regs.bound[rs]:
            base, bound = regs.base[rs], regs.bound[rs]
        elif rt is not None:
            base, bound = regs.base[rt], regs.bound[rt]
        else:
            base, bound = 0, 0
        regs.value[rd] = value
        regs.base[rd] = base
        regs.bound[rd] = bound
        if self.observer is not None and (base or bound):
            self.observer.on_pointer_arith(value)

    def _op_sub(self, instr) -> None:
        regs = self.regs
        rd, rs, rt = instr.rd, instr.rs, instr.rt
        value = (regs.value[rs] - self._operand2(instr)) & MASK32
        if regs.base[rs] or regs.bound[rs]:
            base, bound = regs.base[rs], regs.bound[rs]
        elif rt is not None:
            base, bound = regs.base[rt], regs.bound[rt]
        else:
            base, bound = 0, 0
        regs.value[rd] = value
        regs.base[rd] = base
        regs.bound[rd] = bound
        if self.observer is not None and (base or bound):
            self.observer.on_pointer_arith(value)

    def _nonprop_binop(self, instr, fn: Callable[[int, int], int]) -> None:
        regs = self.regs
        rd = instr.rd
        regs.value[rd] = fn(regs.value[instr.rs],
                            self._operand2(instr)) & MASK32
        regs.base[rd] = 0
        regs.bound[rd] = 0

    def _op_mul(self, instr):
        self._nonprop_binop(instr, lambda a, b: to_signed(a) * to_signed(b))

    def _op_div(self, instr):
        def div(a, b):
            sa, sb = to_signed(a), to_signed(b)
            if sb == 0:
                raise DivideByZeroError()
            q = abs(sa) // abs(sb)
            return q if (sa < 0) == (sb < 0) else -q
        self._nonprop_binop(instr, div)

    def _op_mod(self, instr):
        def mod(a, b):
            sa, sb = to_signed(a), to_signed(b)
            if sb == 0:
                raise DivideByZeroError()
            r = abs(sa) % abs(sb)
            return r if sa >= 0 else -r
        self._nonprop_binop(instr, mod)

    def _op_and(self, instr):
        self._nonprop_binop(instr, lambda a, b: a & b)

    def _op_or(self, instr):
        self._nonprop_binop(instr, lambda a, b: a | b)

    def _op_xor(self, instr):
        self._nonprop_binop(instr, lambda a, b: a ^ b)

    def _op_shl(self, instr):
        self._nonprop_binop(instr, lambda a, b: a << (b & 31))

    def _op_shr(self, instr):
        self._nonprop_binop(instr, lambda a, b: a >> (b & 31))

    def _op_sra(self, instr):
        self._nonprop_binop(instr, lambda a, b: to_signed(a) >> (b & 31))

    def _op_neg(self, instr):
        regs = self.regs
        regs.value[instr.rd] = (-regs.value[instr.rs]) & MASK32
        regs.clear_meta(instr.rd)

    def _op_not(self, instr):
        regs = self.regs
        regs.value[instr.rd] = (~regs.value[instr.rs]) & MASK32
        regs.clear_meta(instr.rd)

    def _cmp(self, instr, fn: Callable[[int, int], bool],
             signed: bool = True) -> None:
        regs = self.regs
        a = regs.value[instr.rs]
        b = self._operand2(instr)
        if signed:
            a, b = to_signed(a), to_signed(b)
        regs.value[instr.rd] = 1 if fn(a, b) else 0
        regs.clear_meta(instr.rd)

    def _op_seq(self, instr):
        self._cmp(instr, lambda a, b: a == b)

    def _op_sne(self, instr):
        self._cmp(instr, lambda a, b: a != b)

    def _op_slt(self, instr):
        self._cmp(instr, lambda a, b: a < b)

    def _op_sle(self, instr):
        self._cmp(instr, lambda a, b: a <= b)

    def _op_sgt(self, instr):
        self._cmp(instr, lambda a, b: a > b)

    def _op_sge(self, instr):
        self._cmp(instr, lambda a, b: a >= b)

    def _op_sltu(self, instr):
        self._cmp(instr, lambda a, b: a < b, signed=False)

    def _op_sgeu(self, instr):
        self._cmp(instr, lambda a, b: a >= b, signed=False)

    # -- memory handlers ------------------------------------------------------

    def _mem_check(self, instr, ea: int, access: str) -> None:
        """Figure 3C/D check, with the frame-access exemption.

        Accesses whose only addressing register is the (unbounded)
        stack or frame pointer are compiler-owned direct accesses,
        like absolute addressing — the paper's compiler proves them
        safe statically and emits no bounded pointer for them.
        """
        regs = self.regs
        src = self._mem_pointer_reg(instr)
        if not (regs.base[src] or regs.bound[src]) and \
                instr.rs in (REG_SP, REG_FP):
            return
        self.hb.check(regs.value[src], regs.base[src],
                      regs.bound[src], ea, instr.size, access,
                      self.full_mode)

    def _op_load(self, instr) -> None:
        regs = self.regs
        ea = self._effective_address(instr)
        if self.hb is not None and instr.rs is not None:
            self._mem_check(instr, ea, "read")
        if self.temporal is not None:
            self.temporal.check(ea, instr.size)
        value = self.memory.read(ea, instr.size)
        self._data_access(ea, instr.size, write=False)
        if self.observer is not None:
            self.observer.on_mem(ea, instr.size, False)
        rd = instr.rd
        if self.hb is not None:
            if instr.size == 4:
                base, bound = self.hb.load_word_meta(ea, value)
            else:
                self.hb.load_sub_meta(ea)
                base, bound = 0, 0
            regs.value[rd] = value
            regs.base[rd] = base
            regs.bound[rd] = bound
        else:
            regs.value[rd] = value
            regs.base[rd] = 0
            regs.bound[rd] = 0

    def _op_store(self, instr) -> None:
        regs = self.regs
        ea = self._effective_address(instr)
        if self.hb is not None and instr.rs is not None:
            self._mem_check(instr, ea, "write")
        if self.temporal is not None:
            self.temporal.check(ea, instr.size)
        rd = instr.rd
        self.memory.write(ea, instr.size, regs.value[rd])
        self._data_access(ea, instr.size, write=True)
        if self.observer is not None:
            self.observer.on_mem(ea, instr.size, True)
        if self.hb is not None:
            if instr.size == 4:
                self.hb.store_word_meta(ea, regs.value[rd],
                                        regs.base[rd], regs.bound[rd])
            else:
                self.hb.store_sub_meta(ea)

    # -- control flow -----------------------------------------------------

    def _op_jmp(self, instr) -> int:
        return instr.target

    def _op_beqz(self, instr) -> Optional[int]:
        return instr.target if self.regs.value[instr.rs] == 0 else None

    def _op_bnez(self, instr) -> Optional[int]:
        return instr.target if self.regs.value[instr.rs] != 0 else None

    def _link(self) -> None:
        """Write the return address with code-pointer metadata."""
        self.regs.set(REG_RA, self.pc + 1, MAXINT, MAXINT)

    def _op_call(self, instr) -> int:
        self._link()
        return instr.target

    def _op_callr(self, instr) -> int:
        regs = self.regs
        rs = instr.rs
        target = regs.value[rs]
        if self.full_mode and not (regs.base[rs] == MAXINT
                                   and regs.bound[rs] == MAXINT):
            raise InvalidCodePointerError(target)
        if target >= len(self.program.instrs):
            raise InvalidCodePointerError(target)
        self._link()
        return target

    def _op_ret(self, instr) -> int:
        target = self.regs.value[REG_RA]
        if self.full_mode and not (self.regs.base[REG_RA] == MAXINT
                                   and self.regs.bound[REG_RA] == MAXINT):
            raise InvalidCodePointerError(target)
        if target >= len(self.program.instrs):
            raise InvalidCodePointerError(target)
        return target

    # -- HardBound primitives ------------------------------------------------

    def _op_setbound(self, instr) -> None:
        regs = self.regs
        value = regs.value[instr.rs]
        size = self._operand2(instr)
        regs.value[instr.rd] = value
        regs.base[instr.rd] = value
        regs.bound[instr.rd] = (value + size) & MASK32
        self.setbound_count += 1
        if self.hb is not None:
            self.hb.stats.setbound_uops += 1
        if self.temporal is not None:
            self.temporal.mark_allocated(value, (value + size) & MASK32)
        if self.observer is not None:
            self.observer.on_setbound(value, size)

    def _op_readbase(self, instr) -> None:
        regs = self.regs
        regs.value[instr.rd] = regs.base[instr.rs]
        regs.clear_meta(instr.rd)

    def _op_readbound(self, instr) -> None:
        regs = self.regs
        regs.value[instr.rd] = regs.bound[instr.rs]
        regs.clear_meta(instr.rd)

    def _op_setunsafe(self, instr) -> None:
        """Escape hatch (Section 3.2): base 0, bound MAXINT."""
        regs = self.regs
        regs.value[instr.rd] = regs.value[instr.rs]
        regs.base[instr.rd] = 0
        regs.bound[instr.rd] = MAXINT

    def _op_setcode(self, instr) -> None:
        """Mark a code pointer: base = bound = MAXINT (Section 6.1)."""
        regs = self.regs
        if instr.rs is not None:
            regs.value[instr.rd] = regs.value[instr.rs]
        else:
            regs.value[instr.rd] = instr.imm & MASK32
        regs.base[instr.rd] = MAXINT
        regs.bound[instr.rd] = MAXINT

    def _op_clrbnd(self, instr) -> None:
        regs = self.regs
        regs.value[instr.rd] = regs.value[instr.rs]
        regs.clear_meta(instr.rd)

    def _op_markfree(self, instr) -> None:
        """Deallocation hint: poison [rs.value, rs.value + size).

        A no-op unless the temporal extension is enabled — forward
        compatible in the same way as ``setbound`` (Section 4.5).
        """
        if self.temporal is not None:
            base = self.regs.value[instr.rs]
            size = self._operand2(instr)
            if size > 0:
                self.temporal.mark_freed(base, (base + size) & MASK32)

    # -- environment -----------------------------------------------------------

    def _op_sbrk(self, instr) -> None:
        regs = self.regs
        increment = to_signed(regs.value[instr.rs])
        old = self.memory.sbrk(increment)
        regs.value[instr.rd] = old
        regs.clear_meta(instr.rd)

    def _emit(self, text: str) -> None:
        if self.config.capture_output:
            self.output.append(text)
        if self.config.echo_output:
            print(text, end="")

    def _op_print(self, instr) -> None:
        self._emit("%d\n" % to_signed(self.regs.value[instr.rs]))

    def _op_printc(self, instr) -> None:
        self._emit(chr(self.regs.value[instr.rs] & 0xFF))

    def _op_prints(self, instr) -> None:
        self._emit(self.memory.read_cstring(self.regs.value[instr.rs]))

    def _op_halt(self, instr) -> None:
        if instr.rs is not None:
            raise HaltSignal(to_signed(self.regs.value[instr.rs]))
        raise HaltSignal(instr.imm or 0)

    def _op_abort(self, instr) -> None:
        if instr.rs is not None:
            raise AbortError(to_signed(self.regs.value[instr.rs]))
        raise AbortError(instr.imm or 0)

    # -- dispatch ---------------------------------------------------------

    def _build_dispatch(self) -> Dict[Op, Callable]:
        return {
            Op.MOV: self._op_mov, Op.LEA: self._op_lea,
            Op.XCHG: self._op_xchg,
            Op.ADD: self._op_add, Op.SUB: self._op_sub,
            Op.MUL: self._op_mul, Op.DIV: self._op_div,
            Op.MOD: self._op_mod, Op.AND: self._op_and,
            Op.OR: self._op_or, Op.XOR: self._op_xor,
            Op.SHL: self._op_shl, Op.SHR: self._op_shr,
            Op.SRA: self._op_sra, Op.NEG: self._op_neg,
            Op.NOT: self._op_not,
            Op.SEQ: self._op_seq, Op.SNE: self._op_sne,
            Op.SLT: self._op_slt, Op.SLE: self._op_sle,
            Op.SGT: self._op_sgt, Op.SGE: self._op_sge,
            Op.SLTU: self._op_sltu, Op.SGEU: self._op_sgeu,
            Op.LOAD: self._op_load, Op.STORE: self._op_store,
            Op.JMP: self._op_jmp, Op.BEQZ: self._op_beqz,
            Op.BNEZ: self._op_bnez, Op.CALL: self._op_call,
            Op.CALLR: self._op_callr, Op.RET: self._op_ret,
            Op.SETBOUND: self._op_setbound,
            Op.READBASE: self._op_readbase,
            Op.READBOUND: self._op_readbound,
            Op.SETUNSAFE: self._op_setunsafe,
            Op.SETCODE: self._op_setcode, Op.CLRBND: self._op_clrbnd,
            Op.MARKFREE: self._op_markfree,
            Op.SBRK: self._op_sbrk, Op.PRINT: self._op_print,
            Op.PRINTC: self._op_printc, Op.PRINTS: self._op_prints,
            Op.HALT: self._op_halt, Op.ABORT: self._op_abort,
        }


def run_program(program: Program, config: MachineConfig = None,
                cache_params: CacheParams = None) -> RunResult:
    """Assemble-and-go convenience: build a CPU and run to halt."""
    return CPU(program, config, cache_params).run()
