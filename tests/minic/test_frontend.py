"""MiniC front end: lexer, parser and semantic diagnostics."""

import pytest

from repro.minic.errors import LexError, ParseError, TypeError_
from repro.minic.lexer import tokenize
from repro.minic.parser import parse
from repro.minic.sema import analyze
from repro.minic import ast
from repro.minic.types import INT, PointerType


def check(source):
    return analyze(parse(source))


class TestLexer:
    def test_token_kinds(self):
        toks = tokenize('int x = 0x1F; // comment\nchar c = \'a\';')
        kinds = [(t.kind, t.text) for t in toks if t.kind != "eof"]
        assert ("kw", "int") in kinds
        assert ("id", "x") in kinds
        assert any(t.kind == "num" and t.value == 31 for t in toks)
        assert any(t.kind == "char" and t.value == 97 for t in toks)

    def test_block_comments_and_newlines(self):
        toks = tokenize("a /* multi\nline */ b")
        assert [t.text for t in toks if t.kind == "id"] == ["a", "b"]
        assert toks[1].line == 2

    def test_string_escapes(self):
        toks = tokenize(r'"a\n\t\\\"\x41"')
        assert toks[0].value == 'a\n\t\\"A'

    def test_unterminated_string(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize('"abc')

    def test_unterminated_comment(self):
        with pytest.raises(LexError, match="comment"):
            tokenize("/* nope")

    def test_bad_char(self):
        with pytest.raises(LexError):
            tokenize("int $x;")

    def test_bad_hex_escape(self):
        with pytest.raises(LexError, match="hex"):
            tokenize(r'"\xZZ"')

    def test_multichar_operators_lex_greedily(self):
        toks = tokenize("a <<= b >>= c -> d ++ --")
        ops = [t.text for t in toks if t.kind == "op"]
        assert ops == ["<<=", ">>=", "->", "++", "--"]


class TestParser:
    def test_precedence_mul_over_add(self):
        unit = parse("int main() { return 1 + 2 * 3; }")
        ret = unit.decls[0].body.stmts[0]
        assert isinstance(ret.value, ast.Binary) and ret.value.op == "+"
        assert ret.value.right.op == "*"

    def test_assignment_is_right_associative(self):
        unit = parse("int main() { int a; int b; a = b = 1; }")
        expr = unit.decls[0].body.stmts[2].expr
        assert isinstance(expr, ast.Assign)
        assert isinstance(expr.value, ast.Assign)

    def test_declarator_arrays_and_pointers(self):
        unit = parse("int **p; char grid[3][4];")
        p, grid = unit.decls
        assert repr(p.type) == "int**"
        assert grid.type.length == 3
        assert grid.type.element.length == 4

    def test_struct_forward_reference(self):
        unit = check("""
        struct node { int v; struct node *next; };
        int main() { return sizeof(struct node); }
        """)
        assert unit.structs["node"].size == 8

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("int main() { return 1 }")

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse("int main() { return (1; }")

    def test_typedef_rejected_clearly(self):
        with pytest.raises(ParseError, match="typedef"):
            parse("typedef int myint;")

    def test_empty_statement_allowed(self):
        unit = parse("int main() { ;;; return 0; }")
        assert len(unit.decls[0].body.stmts) == 1

    def test_comma_expression(self):
        unit = parse("int main() { int a; a = (1, 2); return a; }")
        assert unit is not None

    def test_prototype_then_definition(self):
        unit = check("""
        int f(int x);
        int f(int x) { return x; }
        int main() { return f(1); }
        """)
        assert unit is not None


class TestSemaDiagnostics:
    CASES = [
        ("int main() { return x; }", "undeclared identifier"),
        ("int main() { int x; int x; return 0; }", "redefinition"),
        ("int main() { break; }", "outside a loop"),
        ("void f() { return 1; }", "void function returns"),
        ("int f() { return; }", "return without value"),
        ("int main() { int x; x(); return 0; }", "undeclared function"),
        ("int main() { 5 = 3; return 0; }", "not assignable"),
        ("int main() { int x; return *x; }", "cannot dereference"),
        ("int main() { void *v; return *v; }", "void"),
        ("int main() { int a[2]; a.x = 1; return 0; }",
         "on non-struct"),
        ("struct s { int a; }; int main() { struct s v; return v.b; }",
         "no field"),
        ("int f(int a) { return a; } int main() { return f(); }",
         "expects 1 argument"),
        ("int main() { int *p; p = 5; return 0; }", "cannot assign"),
        ("int main() { int *p; int *q; return p * q; }",
         "invalid operands"),
        ("struct s; int main() { struct s v; return 0; }",
         "incomplete"),
        ("int f() { return 0; } int f() { return 1; }",
         "redefinition"),
        ("int main() { return sizeof(struct nope); }", "incomplete"),
        ("int print(int x) { return x; }", "builtin"),
    ]

    @pytest.mark.parametrize("source,message", CASES)
    def test_diagnostic(self, source, message):
        with pytest.raises(TypeError_, match=message):
            check(source)

    def test_int_to_pointer_requires_cast(self):
        with pytest.raises(TypeError_):
            check("int main() { int *p; p = 4096; return 0; }")
        check("int main() { int *p; p = (int*)4096; return 0; }")

    def test_pointer_difference_requires_same_type(self):
        with pytest.raises(TypeError_, match="pointer difference"):
            check("""
            int main() {
                int *p; char *q;
                return p - q;
            }""")

    def test_void_pointer_is_universal(self):
        check("""
        int main() {
            void *v; int *p; char *c;
            v = p; c = (char*)v; p = (int*)v;
            return 0;
        }""")


class TestSemaAnnotation:
    def test_expression_types(self):
        unit = check("""
        int g;
        int main() {
            int *p = &g;
            return *p + 1;
        }""")
        ret = unit.decls[1].body.stmts[1]
        binary = ret.value
        assert binary.ty == INT
        assert binary.left.operand.ty == PointerType(INT)

    def test_array_decay_annotation(self):
        unit = check("""
        int main() {
            int a[4];
            int *p = a;
            return 0;
        }""")
        decl = unit.decls[0].body.stmts[1].decl
        assert decl.init.ty == PointerType(INT)

    def test_frame_layout_offsets(self):
        unit = check("""
        int f(int a, int b) {
            int x;
            char buf[6];
            int y;
            return 0;
        }""")
        sym = unit.decls[0].symbol
        assert sym.frame_size >= 4 + 8 + 4
        body = unit.decls[0].body
        x = body.stmts[0].decl.symbol
        buf = body.stmts[1].decl.symbol
        y = body.stmts[2].decl.symbol
        assert x.offset < buf.offset < y.offset
        # params above the saved fp/ra pair
        params = [s for s in (x, buf, y)]
        assert all(p.offset > 0 for p in params)
