"""Set-associative LRU cache model.

Purely a hit/miss predictor: contents are not stored, only presence.
Used for the L1 data cache, the unified L2, the tag metadata cache and
(with the page size as the "block") the TLBs.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List


def _ilog2(n: int) -> int:
    bits = n.bit_length() - 1
    if 1 << bits != n:
        raise ValueError("%d is not a power of two" % n)
    return bits


class Cache:
    """LRU set-associative cache keyed by block address.

    ``size`` is total capacity in bytes, ``assoc`` the number of ways,
    ``block`` the line size in bytes.  All three must be powers of two.
    """

    __slots__ = ("name", "size", "assoc", "block", "num_sets",
                 "_block_shift", "_set_mask", "_sets",
                 "accesses", "misses", "evictions")

    def __init__(self, name: str, size: int, assoc: int, block: int):
        if size % (assoc * block):
            raise ValueError("size must be a multiple of assoc*block")
        self.name = name
        self.size = size
        self.assoc = assoc
        self.block = block
        self.num_sets = size // (assoc * block)
        self._block_shift = _ilog2(block)
        self._set_mask = self.num_sets - 1
        _ilog2(self.num_sets)  # validate power of two
        self._sets: List[OrderedDict] = [OrderedDict()
                                         for _ in range(self.num_sets)]
        self.accesses = 0
        self.misses = 0
        self.evictions = 0

    def access(self, addr: int) -> bool:
        """Touch the block containing ``addr``; return True on hit."""
        block_no = addr >> self._block_shift
        line = self._sets[block_no & self._set_mask]
        self.accesses += 1
        if block_no in line:
            line.move_to_end(block_no)
            return True
        self.misses += 1
        if len(line) >= self.assoc:
            line.popitem(last=False)
            self.evictions += 1
        line[block_no] = None
        return False

    def contains(self, addr: int) -> bool:
        """Non-mutating presence probe (no stats, no LRU update)."""
        block_no = addr >> self._block_shift
        return block_no in self._sets[block_no & self._set_mask]

    def reset_stats(self) -> None:
        """Zero the counters, keeping contents."""
        self.accesses = 0
        self.misses = 0
        self.evictions = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    def miss_rate(self) -> float:
        """Miss ratio over the lifetime of the cache (0 if untouched)."""
        return self.misses / self.accesses if self.accesses else 0.0

    def __repr__(self):
        return ("Cache(%s %dB %d-way %dB/block: %d acc, %.1f%% miss)"
                % (self.name, self.size, self.assoc, self.block,
                   self.accesses, 100.0 * self.miss_rate()))
