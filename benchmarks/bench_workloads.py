"""Per-workload simulation timings (pytest-benchmark's own table).

Not a paper figure — this measures the wall-clock cost of simulating
each Olden benchmark under the best encoding, useful for tracking
simulator performance regressions.
"""

import pytest

from repro.harness.runner import run_workload
from repro.machine.config import MachineConfig
from repro.workloads.registry import WORKLOADS


@pytest.mark.parametrize("name", list(WORKLOADS))
def test_simulate_workload(name, benchmark):
    result = benchmark.pedantic(
        lambda: run_workload(name,
                             MachineConfig.hardbound(
                                 encoding="intern11")),
        rounds=1, iterations=1)
    assert result.exit_code == 0
