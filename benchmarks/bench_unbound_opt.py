"""E12 (extension) — Section 8's static unbounding optimization.

"If the compiler can statically prove that bounds checking is not
necessary, it can unbound the pointer to reduce HardBound's checking
overheads."  We measure the constant-index optimization on the Olden
benchmarks (which, being pointer-chasing codes, benefit modestly —
the paper's bh inlining change addressed exactly this class of cost).
"""

from conftest import write_result

from repro.harness.figures import format_table
from repro.harness.runner import ENCODINGS
from repro.machine.config import MachineConfig
from repro.machine.cpu import CPU
from repro.minic.codegen import InstrumentMode
from repro.minic.driver import compile_program
from repro.workloads.registry import WORKLOADS

BENCHES = ("bh", "perimeter", "em3d")


def test_unbound_optimization(benchmark):
    def measure():
        out = {}
        for name in BENCHES:
            source = WORKLOADS[name].source
            runs = {}
            for label, opt in (("bounded", False), ("unbound", True)):
                program = compile_program(
                    source, InstrumentMode.HARDBOUND,
                    optimize_static=opt)
                cfg = MachineConfig.hardbound(encoding="intern11")
                runs[label] = CPU(program, cfg).run()
            out[name] = runs
        return out

    out = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = []
    for name, runs in out.items():
        bounded, unbound = runs["bounded"], runs["unbound"]
        rows.append([name, "%d" % bounded.cycles,
                     "%d" % unbound.cycles,
                     "%.4f" % (unbound.cycles / bounded.cycles)])
    table = format_table(
        ["benchmark", "bounded-cycles", "unbound-cycles", "ratio"],
        rows, "E12: static unbounding optimization (Section 8)")
    print("\n" + table)
    write_result("unbound_opt.txt", table)

    for name, runs in out.items():
        assert runs["bounded"].output == runs["unbound"].output, name
        assert runs["unbound"].cycles <= runs["bounded"].cycles, name
