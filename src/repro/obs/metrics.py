"""Always-on counters and monotonic phase timers.

Two small primitives, both designed so the *hot path* pays nothing
it was not already paying:

* :class:`MetricsRegistry` — a flat name → number map with
  snapshot/diff semantics.  Incrementing is one dict operation;
  there are no locks (CPython dict ops are atomic enough for the
  in-process counting done here, and the sharded harness keeps one
  registry per worker process).  The module-level :data:`REGISTRY`
  is the process-wide instance the harness feeds (sweep cache
  hits/misses/writes, cells run).

* :class:`PhaseTimers` — wall-clock accumulators charged at *phase
  granularity* (a run has a handful of phase transitions, never one
  per instruction), following the low-overhead statistical-counter
  rule: keep the increment local and cheap, pay aggregation costs at
  read time.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Optional


class MetricsRegistry:
    """Flat registry of named counters with snapshot/diff semantics.

    Counter names are dotted strings (``"sweep.cache.hits"``).
    Values are plain ints or floats; a counter springs into existence
    at first increment.
    """

    __slots__ = ("counters",)

    def __init__(self):
        self.counters: Dict[str, float] = {}

    def inc(self, name: str, n: float = 1) -> None:
        """Add ``n`` to ``name`` (creating it at 0)."""
        counters = self.counters
        counters[name] = counters.get(name, 0) + n

    def get(self, name: str, default: float = 0) -> float:
        return self.counters.get(name, default)

    def snapshot(self) -> Dict[str, float]:
        """A point-in-time copy of every counter."""
        return dict(self.counters)

    def diff(self, before: Dict[str, float]) -> Dict[str, float]:
        """Deltas of the live counters against a prior snapshot.

        Only counters that changed (or appeared) since ``before``
        are included — the natural unit for "what did this sweep
        do".
        """
        out: Dict[str, float] = {}
        for name, value in self.counters.items():
            delta = value - before.get(name, 0)
            if delta:
                out[name] = delta
        return out

    def reset(self) -> None:
        self.counters.clear()


#: the process-wide registry (harness cache statistics land here)
REGISTRY = MetricsRegistry()


class _Phase:
    """Context manager charging one phase on exit."""

    __slots__ = ("timers", "name", "t0")

    def __init__(self, timers: "PhaseTimers", name: str):
        self.timers = timers
        self.name = name

    def __enter__(self):
        self.t0 = perf_counter()
        return self

    def __exit__(self, *exc):
        self.timers.add(self.name, perf_counter() - self.t0)
        return False


class PhaseTimers:
    """Monotonic wall-clock accumulators, one per pipeline phase.

    The engines charge the canonical phases ``decode`` (closure
    specialization + env binding), ``cfg_fusion`` (block discovery
    and template fusion, including warm-plan trace rebinding),
    ``trace_formation`` (superblock chain growth + trace closure
    generation; nested *inside* ``execute`` because formation
    happens at threshold crossings mid-run), ``probe_compile``
    (memory-system construction, where per-geometry probe sources
    compile) and ``execute`` (the dispatch loop, wall-clock, entry
    to exit).  Nothing enforces that set — ad-hoc phases time fine —
    but the report CLI knows how to present the canonical ones.
    """

    __slots__ = ("seconds", "calls")

    def __init__(self):
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}

    def add(self, phase: str, dt: float) -> None:
        """Charge ``dt`` seconds (one call) to ``phase``."""
        seconds = self.seconds
        seconds[phase] = seconds.get(phase, 0.0) + dt
        calls = self.calls
        calls[phase] = calls.get(phase, 0) + 1

    def phase(self, name: str) -> _Phase:
        """``with timers.phase("decode"): ...``"""
        return _Phase(self, name)

    def snapshot(self) -> Dict[str, float]:
        """``{phase: cumulative_seconds}`` copy (the shape carried on
        ``RunResult.phases`` and in ``run_end`` events)."""
        return dict(self.seconds)

    def total(self) -> float:
        """Sum of all phase seconds (phases may nest; see class doc —
        ``trace_formation`` time is also inside ``execute``)."""
        return sum(self.seconds.values())


def execute_net(phases: Optional[Dict[str, float]]) -> float:
    """Execution-loop seconds net of nested trace formation.

    ``execute`` is measured around the whole dispatch loop;
    superblock trace formation runs *inside* that loop at threshold
    crossings, so subtracting it out gives the pure dispatch time.
    """
    if not phases:
        return 0.0
    return max(phases.get("execute", 0.0)
               - phases.get("trace_formation", 0.0), 0.0)
