"""Command-line regeneration of every paper artifact.

Usage::

    python -m repro.harness.report            # everything (~2 min)
    python -m repro.harness.report figures    # Figures 5-7 only
    python -m repro.harness.report corpus     # Section 5.2 corpus only
"""

from __future__ import annotations

import sys

from repro.harness.figures import (
    figure5_table,
    figure6_table,
    figure7_table,
    format_table,
)
from repro.harness.runner import run_benchmark_matrix
from repro.harness.violations import run_corpus


def report_corpus() -> None:
    print("Section 5.2: spatial-violation corpus "
          "(288 pairs, full-safety HardBound)")
    result = run_corpus(progress=True)
    print("  " + result.summary())
    if not result.clean:
        for name in result.missed:
            print("  MISSED: %s" % name)
        for name in result.false_positives:
            print("  FALSE POSITIVE: %s" % name)


def report_figures() -> None:
    print("Running the Section 5 measurement matrix "
          "(9 workloads x 6 configurations)...")
    matrix = run_benchmark_matrix()
    for builder, title in (
            (figure5_table, "Figure 5: runtime overhead breakdown"),
            (figure6_table, "Figure 6: extra distinct pages touched"),
            (figure7_table, "Figure 7: comparison vs software schemes")):
        headers, rows = builder(matrix)
        print()
        print(format_table(headers, rows, title))


def main(argv) -> int:
    what = argv[1] if len(argv) > 1 else "all"
    if what in ("corpus", "all"):
        report_corpus()
    if what in ("figures", "all"):
        report_figures()
    if what not in ("corpus", "figures", "all"):
        print(__doc__)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
