"""Sharded matrix harness: worker equivalence and on-disk caching."""

import pickle

from repro.harness.parallel import (
    ObjTableSummary,
    ResultCache,
    cell_descriptor,
    run_benchmark_matrix_parallel,
    run_cell,
    sweep_objtable_elision_parallel,
    sweep_tag_cache_parallel,
)
from repro.harness.runner import run_benchmark_matrix
from repro.harness.sweeps import (
    sweep_ccured_safe_fraction,
    sweep_objtable_elision,
)

WORKLOADS = ("treeadd", "power")
ENCODINGS = ("intern11",)
#: cells per workload: base + intern11 + ccured + objtable
CELLS = len(WORKLOADS) * 4


def assert_matrices_equal(parallel, serial):
    assert set(parallel) == set(serial)
    for name in serial:
        p, s = parallel[name], serial[name]
        assert p.base.cycles == s.base.cycles
        assert p.base.uops == s.base.uops
        for enc in ENCODINGS:
            assert p.encodings[enc].cycles == s.encodings[enc].cycles
            assert (p.encodings[enc].hb_stats.as_dict()
                    == s.encodings[enc].hb_stats.as_dict())
            assert abs(p.overhead(enc) - s.overhead(enc)) < 1e-12
        assert p.ccured.cycles == s.ccured.cycles
        assert p.objtable.extra_uops == s.objtable.extra_uops
        assert abs(p.ccured_runtime_overhead()
                   - s.ccured_runtime_overhead()) < 1e-12
        assert abs(p.objtable_runtime_overhead()
                   - s.objtable_runtime_overhead()) < 1e-12


class TestShardedMatrix:
    def test_matches_serial_and_warm_rerun_hits_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        parallel = run_benchmark_matrix_parallel(
            workloads=WORKLOADS, encodings=ENCODINGS, workers=2,
            cache=cache)
        assert cache.hits == 0
        assert cache.misses == CELLS

        serial = run_benchmark_matrix(workloads=WORKLOADS,
                                      encodings=ENCODINGS)
        assert_matrices_equal(parallel, serial)

        # warm rerun: every cell served from disk, no worker touched
        warm_cache = ResultCache(str(tmp_path / "cache"))
        warm = run_benchmark_matrix_parallel(
            workloads=WORKLOADS, encodings=ENCODINGS, workers=2,
            cache=warm_cache)
        assert warm_cache.hits == CELLS
        assert warm_cache.misses == 0
        assert_matrices_equal(warm, serial)

    def test_source_change_invalidates_cell_key(self):
        a = ResultCache.key_of(
            cell_descriptor("treeadd", "intern11", True, "decoded"))
        b = ResultCache.key_of(
            cell_descriptor("treeadd", "intern11", True, "legacy"))
        c = ResultCache.key_of(
            cell_descriptor("treeadd", "intern11", False, "decoded"))
        d = ResultCache.key_of(
            cell_descriptor("power", "intern11", True, "decoded"))
        assert len({a, b, c, d}) == 4

    def test_cell_results_are_picklable_snapshots(self):
        result = run_cell(("treeadd", "intern11", False, "decoded"))
        clone = pickle.loads(pickle.dumps(result))
        assert clone.cycles == result.cycles
        assert clone.hb_stats.as_dict() == result.hb_stats.as_dict()
        summary = run_cell(("treeadd", "objtable", False, "decoded"))
        assert isinstance(summary, ObjTableSummary)
        clone = pickle.loads(pickle.dumps(summary))
        assert clone.extra_uops == summary.extra_uops


class TestShardedSweeps:
    def test_ccured_sweep_matches_serial(self):
        names = ["treeadd"]
        fractions = [0.5, 0.9]
        serial = sweep_ccured_safe_fraction(names, fractions)
        parallel = sweep_ccured_safe_fraction(names, fractions,
                                              workers=2)
        assert set(serial) == set(parallel)
        for fraction in serial:
            assert abs(serial[fraction] - parallel[fraction]) < 1e-12

    def test_objtable_sweep_matches_serial_and_caches(self, tmp_path):
        names = ["treeadd"]
        fractions = [0.0, 0.5]
        serial = sweep_objtable_elision(names, fractions)
        cache = ResultCache(str(tmp_path / "cache"))
        parallel = sweep_objtable_elision_parallel(
            names, fractions, workers=2, cache=cache)
        assert set(serial) == set(parallel)
        for fraction in serial:
            assert abs(serial[fraction] - parallel[fraction]) < 1e-12
        # one baseline cell + one cell per fraction
        assert cache.misses == 1 + len(fractions)

        warm_cache = ResultCache(str(tmp_path / "cache"))
        warm = sweep_objtable_elision_parallel(
            names, fractions, workers=2, cache=warm_cache)
        assert warm_cache.hits == 1 + len(fractions)
        assert warm_cache.misses == 0
        assert warm == parallel

    def test_objtable_sweep_workers_delegation(self):
        names = ["treeadd"]
        fractions = [0.5]
        serial = sweep_objtable_elision(names, fractions)
        delegated = sweep_objtable_elision(names, fractions, workers=2)
        assert abs(serial[0.5] - delegated[0.5]) < 1e-12

    def test_tag_cache_sweep_matches_direct_runs(self, tmp_path):
        from repro.caches.hierarchy import CacheParams
        from repro.harness.runner import run_workload
        from repro.machine.config import MachineConfig

        names = ["treeadd"]
        sizes = [512, 8192]
        cache = ResultCache(str(tmp_path / "cache"))
        sweep = sweep_tag_cache_parallel(names, sizes, workers=2,
                                         cache=cache)
        assert set(sweep) == {("treeadd", 512), ("treeadd", 8192)}
        for size in sizes:
            run = run_workload(
                "treeadd",
                MachineConfig.hardbound(encoding="extern4",
                                        retain_cpu=True),
                cache_params=CacheParams(tag_cache_size=size))
            cell = sweep[("treeadd", size)]
            assert cell["cycles"] == run.cycles
            assert abs(cell["tag_miss_rate"]
                       - run.cpu.memsys.tag_cache.miss_rate()) < 1e-12

        warm_cache = ResultCache(str(tmp_path / "cache"))
        warm = sweep_tag_cache_parallel(names, sizes, workers=2,
                                        cache=warm_cache)
        assert warm_cache.hits == len(sizes)
        assert warm == sweep
