"""Random typed, pointer-heavy MiniC source.

The point of fuzzing at the source level (on top of
:mod:`repro.fuzz.isagen`) is that every generated program flows
through the *whole* pipeline — lexer, parser, sema, codegen, the
textual peephole optimizer, the assembler — before it ever reaches
the engines, so the oracle's ``optimize`` on/off differential fuzzes
the compiler too, not just the cores.

Generated programs are total by construction:

* every loop has a constant trip count (``for (i = 0; i < K; ...)``
  or a list walk over a list of statically-known length);
* every division/modulo uses a nonzero constant divisor;
* every array index is masked into the allocation (``buf[e & 15]``);
* shifts are masked to ``& 15``;
* the only ``free`` is followed by a fresh ``malloc`` before any
  further use (benign free/realloc — the temporal tracker must stay
  silent).

They are pointer-heavy on purpose: int and char heap buffers,
pointer-taking helper functions, and (about half the time) a
linked-list build-and-walk over a generated struct, so ``setbound``
propagation, sub-word accesses and tagged pointer loads/stores all
get traffic.  Each program ends ``print(acc); return acc & 255;`` so
output and exit status both depend on the computation.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.fuzz.rng import fuzz_rng

#: int elements in the heap buffer (indices masked with & 15)
INTS = 16
#: bytes in the char buffer (indices masked with & 31)
CHARS = 32

_BINOPS = ("+", "-", "*", "&", "|", "^")
_CMPS = ("<", "<=", ">", ">=", "==", "!=")
_VARS = ("a", "b", "c", "d")


class _Gen:
    def __init__(self, rng: random.Random):
        self.rng = rng
        self.lines: List[str] = []
        self.use_list = rng.random() < 0.5
        self.n_helpers = rng.randrange(0, 3)

    def w(self, text: str, indent: int = 1) -> None:
        self.lines.append("    " * indent + text)

    # -- expressions --------------------------------------------------------

    def scalar(self) -> str:
        r = self.rng.random()
        if r < 0.45:
            return self.rng.choice(_VARS)
        if r < 0.6:
            return self.rng.choice(("g0", "g1"))
        return str(self.rng.randrange(-40, 41))

    def expr(self, depth: int = 0) -> str:
        r = self.rng.random()
        if depth >= 2 or r < 0.35:
            return self.scalar()
        if r < 0.75:
            return "(%s %s %s)" % (self.expr(depth + 1),
                                   self.rng.choice(_BINOPS),
                                   self.expr(depth + 1))
        if r < 0.82:
            return "(%s / %d)" % (self.expr(depth + 1),
                                  self.rng.choice((2, 3, 5, 7)))
        if r < 0.87:
            return "(%s %% %d)" % (self.expr(depth + 1),
                                   self.rng.choice((3, 7, 13)))
        if r < 0.92:
            op = self.rng.choice(("<<", ">>"))
            return "(%s %s (%s & 15))" % (self.expr(depth + 1), op,
                                          self.scalar())
        if r < 0.96:
            return "buf[%s & %d]" % (self.expr(depth + 1), INTS - 1)
        return "(int)cb[%s & %d]" % (self.expr(depth + 1), CHARS - 1)

    def cond(self) -> str:
        return "%s %s %s" % (self.scalar(), self.rng.choice(_CMPS),
                             self.scalar())

    # -- statements ---------------------------------------------------------

    def stmt(self, indent: int, depth: int) -> None:
        r = self.rng.random()
        if r < 0.30:
            v = self.rng.choice(_VARS + ("g0", "g1"))
            if self.rng.random() < 0.25:
                op = self.rng.choice(("+=", "-=", "^=", "|=", "&="))
                self.w("%s %s %s;" % (v, op, self.expr()), indent)
            else:
                self.w("%s = %s;" % (v, self.expr()), indent)
        elif r < 0.45:
            self.w("buf[%s & %d] = %s;"
                   % (self.expr(1), INTS - 1, self.expr()), indent)
        elif r < 0.55:
            self.w("cb[%s & %d] = (char)(%s & 255);"
                   % (self.expr(1), CHARS - 1, self.expr()), indent)
        elif r < 0.63:
            v = self.rng.choice(_VARS)
            self.w("%s = %s ? %s : %s;"
                   % (v, self.cond(), self.expr(1), self.expr(1)),
                   indent)
        elif r < 0.72 and self.n_helpers:
            fn = "fn%d" % self.rng.randrange(self.n_helpers)
            self.w("%s = %s(buf, %s);"
                   % (self.rng.choice(_VARS), fn, self.expr(1)),
                   indent)
        elif r < 0.84 and depth < 2:
            self.w("if (%s) {" % self.cond(), indent)
            for _ in range(self.rng.randrange(1, 3)):
                self.stmt(indent + 1, depth + 1)
            if self.rng.random() < 0.5:
                self.w("} else {", indent)
                for _ in range(self.rng.randrange(1, 3)):
                    self.stmt(indent + 1, depth + 1)
            self.w("}", indent)
        elif depth < 2:
            # one loop variable per nesting depth: an inner loop
            # reusing the outer counter would never terminate
            var = "i" if depth == 0 else "j"
            trip = self.rng.randrange(2, 13)
            self.w("for (%s = 0; %s < %d; %s++) {"
                   % (var, var, trip, var), indent)
            for _ in range(self.rng.randrange(1, 4)):
                self.stmt(indent + 1, depth + 1)
            self.w("}", indent)
        else:
            self.w("%s = %s;" % (self.rng.choice(_VARS), self.expr()),
                   indent)

    # -- whole program ------------------------------------------------------

    def helper(self, k: int) -> None:
        self.lines.append("int fn%d(int *p, int x) {" % k)
        self.w("int s;")
        self.w("int i;")
        self.w("s = x;")
        trip = self.rng.randrange(2, INTS + 1)
        body = self.rng.choice((
            "s = s + p[i] * %d;" % self.rng.randrange(1, 5),
            "s = (s ^ p[i]) + %d;" % self.rng.randrange(-9, 10),
            "p[i] = p[i] + s; s = s - 1;",
        ))
        self.w("for (i = 0; i < %d; i++) { %s }" % (trip, body))
        self.w("return s;")
        self.lines.append("}")
        self.lines.append("")

    def generate(self, seed: int, stmts: Optional[int]) -> str:
        rng = self.rng
        self.lines.append("// repro.fuzz minic program (seed=%d)"
                          % seed)
        self.lines.append("int g0;")
        self.lines.append("int g1;")
        if self.use_list:
            self.lines.append(
                "struct node { int val; struct node *next; };")
        self.lines.append("")
        for k in range(self.n_helpers):
            self.helper(k)
        self.lines.append("int main() {")
        self.w("int a = %d;" % rng.randrange(-50, 50))
        self.w("int b = %d;" % rng.randrange(1, 50))
        self.w("int c = %d;" % rng.randrange(0, 9))
        self.w("int d = 0;")
        self.w("int i;")
        self.w("int j;")
        self.w("int acc;")
        self.w("int *buf = (int*)malloc(%d * sizeof(int));" % INTS)
        self.w("char *cb = (char*)malloc(%d);" % CHARS)
        if self.use_list:
            self.w("struct node *head = (struct node*)0;")
            self.w("struct node *n;")
        self.w("for (i = 0; i < %d; i++) { buf[i] = i * %d + %d; }"
               % (INTS, rng.randrange(1, 7), rng.randrange(-5, 6)))
        self.w("for (i = 0; i < %d; i++) "
               "{ cb[i] = (char)(i * %d & 255); }"
               % (CHARS, rng.randrange(1, 9)))

        if stmts is None:
            stmts = rng.randrange(5, 14)
        for _ in range(stmts):
            self.stmt(1, 0)

        if self.use_list:
            nodes = rng.randrange(2, 6)
            self.w("for (i = 0; i < %d; i++) {" % nodes)
            self.w("n = (struct node*)malloc(sizeof(struct node));",
                   2)
            self.w("n->val = i * %d + a;" % rng.randrange(1, 9), 2)
            self.w("n->next = head;", 2)
            self.w("head = n;", 2)
            self.w("}")
            self.w("while (head) { d = d + head->val; "
                   "head = head->next; }")

        if rng.random() < 0.35:
            # benign free + realloc: the chunk is recycled and fully
            # re-blessed through malloc's __setbound before reuse
            self.w("free((void*)buf);")
            self.w("buf = (int*)malloc(%d * sizeof(int));" % INTS)
            self.w("for (i = 0; i < %d; i++) { buf[i] = i; }" % INTS)

        self.w("acc = a + b + c + d + g0 + g1;")
        self.w("for (i = 0; i < %d; i++) { acc = acc + buf[i]; }"
               % INTS)
        self.w("for (i = 0; i < %d; i++) "
               "{ acc = acc + (int)cb[i]; }" % CHARS)
        self.w("print(acc);")
        self.w("return acc & 255;")
        self.lines.append("}")
        return "\n".join(self.lines) + "\n"


def generate_minic_program(seed: int,
                           stmts: Optional[int] = None) -> str:
    """Generate one deterministic random MiniC program.

    ``REPRO_FUZZ_SEED`` overrides ``seed``; the effective seed is
    stamped into the program's header comment.
    """
    rng, seed = fuzz_rng(seed)
    return _Gen(rng).generate(seed, stmts)
