"""Render observability artifacts on the terminal.

Usage::

    python -m repro.obs.report summary RUN.jsonl [--top N]
    python -m repro.obs.report diff A B [--top N]
    python -m repro.obs.report fuzz FUZZ.jsonl [--top N]
    python -m repro.obs.report service SVC.jsonl [--top N]

``summary`` renders, from one obs JSONL (any number of runs — e.g. a
whole Olden sweep appended into one file):

* a per-run result table (cycles, instructions, traces, side-exit
  rate),
* a phase-time breakdown (decode / probe compile / CFG+fusion /
  trace formation / execute),
* the top-N hot traces by dispatch count with their pc ranges,
* a side-exit heatmap (which branch pcs leak off-trace, with bars).

``diff`` A/B-compares two artifacts of the *same* kind: either two
obs JSONL files (per-label cycles/instructions/execute-seconds
deltas) or two ``results/BENCH_engine.json`` records (per-engine
sweep seconds, speedups and trace stats deltas).

``fuzz`` renders a ``python -m repro.fuzz`` result stream: programs
run per level/config, outcome-status and trap-class distributions,
shard summaries, and every recorded divergence.

``service`` renders a ``repro.service`` dispatcher stream: dispatch
traffic with the warm/cold split, per-worker job counts and warm
fractions, the requeue audit trail, and shutdown counter snapshots.

Every renderer is importable — the bench harness calls them to write
``results/obs_report.txt`` — and the CLI is just argument plumbing.
"""

from __future__ import annotations

import argparse
import json
from typing import Dict, List, Optional, Tuple

from repro.harness.figures import format_table
from repro.obs.events import read_events, run_label, split_runs
from repro.obs.metrics import execute_net

#: phase columns of the breakdown table, in pipeline order
PHASES = ("decode", "probe_compile", "cfg_fusion",
          "trace_formation", "execute")


# -- artifact loading --------------------------------------------------------

def load_artifact(path: str):
    """Classify and load one artifact.

    Returns ``("bench", record_dict)`` for a ``BENCH_engine.json``
    style record (a single JSON object with a ``speedups`` key) or
    ``("events", [event, ...])`` for an obs JSONL.
    """
    with open(path, "r", encoding="utf-8") as fh:
        head = fh.read(1 << 20)
    try:
        record = json.loads(head)
    except ValueError:
        record = None
    if isinstance(record, dict) and "speedups" in record:
        return "bench", record
    return "events", list(read_events(path))


# -- per-run aggregation -----------------------------------------------------

class RunSummary:
    """Everything the renderers need from one run's event group."""

    __slots__ = ("label", "stats", "phases", "engine_stats",
                 "trace_profiles", "side_exit_profiles", "aborted")

    def __init__(self, run: List[dict]):
        self.label = run_label(run)
        self.stats: Dict = {}
        self.phases: Dict[str, float] = {}
        self.engine_stats: Optional[dict] = None
        self.trace_profiles: List[dict] = []
        self.side_exit_profiles: List[dict] = []
        self.aborted = False
        for event in run:
            ev = event.get("ev")
            if ev == "run_end":
                self.stats = event
                self.phases = event.get("phases") or {}
                self.engine_stats = event.get("engine_stats")
            elif ev == "run_abort":
                self.aborted = True
                self.stats = event
                self.phases = event.get("phases") or {}
            elif ev == "trace_profile":
                self.trace_profiles.append(event)
            elif ev == "side_exit_profile":
                self.side_exit_profiles.append(event)


def summarize(events: List[dict]) -> List[RunSummary]:
    """Group a JSONL event stream into per-run summaries."""
    return [RunSummary(run) for run in split_runs(events)
            if any(e.get("ev") == "run_start" for e in run)]


# -- summary tables ----------------------------------------------------------

def runs_table(runs: List[RunSummary]) -> str:
    headers = ["run", "exit", "instructions", "cycles", "traces",
               "trace-disp", "side-exit-rate"]
    rows = []
    for run in runs:
        stats = run.stats
        es = run.engine_stats or {}
        rows.append([
            run.label,
            "abort" if run.aborted else str(stats.get("exit_code",
                                                      "?")),
            str(stats.get("instructions", "?")),
            str(stats.get("cycles", "?")),
            str(es.get("traces_formed", "-")),
            str(es.get("trace_dispatches", "-")),
            ("%.3f" % es["side_exit_rate"]
             if "side_exit_rate" in es else "-"),
        ])
    return format_table(headers, rows, "Runs")


def phase_table(runs: List[RunSummary]) -> str:
    """Phase-time breakdown, one row per run plus an aggregate.

    ``execute`` is shown net of nested trace formation (see
    :func:`repro.obs.metrics.execute_net`); the ``total`` column is
    the non-overlapping sum.
    """
    headers = ["run"] + list(PHASES) + ["total"]
    rows = []
    agg = {phase: 0.0 for phase in PHASES}
    for run in runs:
        phases = run.phases
        cells = [run.label]
        total = 0.0
        for phase in PHASES:
            value = (execute_net(phases) if phase == "execute"
                     else phases.get(phase, 0.0))
            agg[phase] += value
            total += value
            cells.append("%.4fs" % value)
        cells.append("%.4fs" % total)
        rows.append(cells)
    if len(rows) > 1:
        rows.append(["TOTAL"]
                    + ["%.4fs" % agg[phase] for phase in PHASES]
                    + ["%.4fs" % sum(agg.values())])
    return format_table(headers, rows,
                        "Phase times (execute net of trace "
                        "formation)")


def hot_traces_table(runs: List[RunSummary], top: int = 10) -> str:
    """Top-N traces by dispatch count across every run."""
    entries = []
    for run in runs:
        for profile in run.trace_profiles:
            entries.append((profile.get("dispatches", 0), run.label,
                            profile))
    entries.sort(key=lambda item: (-item[0], item[1],
                                   item[2].get("head", 0)))
    headers = ["run", "head", "pc-range", "blocks", "instrs",
               "dispatches", "side-exits", "cross-call"]
    rows = []
    for dispatches, label, profile in entries[:top]:
        rows.append([
            label,
            str(profile.get("head", "?")),
            "%s..%s" % (profile.get("pc_lo", "?"),
                        profile.get("pc_hi", "?")),
            str(profile.get("blocks", "?")),
            str(profile.get("instrs", "?")),
            str(dispatches),
            str(profile.get("side_exits", 0)),
            "yes" if profile.get("has_call") else "no",
        ])
    return format_table(headers, rows,
                        "Hot traces (top %d by dispatches)" % top)


def side_exit_table(runs: List[RunSummary], top: int = 15,
                    width: int = 24) -> str:
    """Side-exit heatmap: which branch pcs leak off-trace."""
    entries = []
    for run in runs:
        for profile in run.side_exit_profiles:
            count = profile.get("count", 0)
            if count:
                entries.append((count, run.label, profile))
    entries.sort(key=lambda item: (-item[0], item[1]))
    peak = entries[0][0] if entries else 1
    headers = ["run", "trace-head", "branch-pc", "exits", "heat"]
    rows = []
    for count, label, profile in entries[:top]:
        bar = "#" * max(1, int(round(width * count / peak)))
        rows.append([label, str(profile.get("head", "?")),
                     str(profile.get("branch_pc", "?")),
                     str(count), bar])
    return format_table(headers, rows,
                        "Side-exit heatmap (top %d branch sites)"
                        % top)


def render_summary(events: List[dict], top: int = 10) -> str:
    """The full ``summary`` report for one JSONL event stream."""
    runs = summarize(events)
    if not runs:
        return "no runs recorded (is obs_events enabled?)"
    sections = [runs_table(runs), phase_table(runs),
                hot_traces_table(runs, top),
                side_exit_table(runs)]
    return "\n\n".join(sections)


# -- fuzz --------------------------------------------------------------------

def fuzz_overview_table(events: List[dict]) -> str:
    """Per-(level, safety-mode) program counts and verdicts."""
    cells: Dict[Tuple[str, str], Dict[str, int]] = {}
    for event in events:
        if event.get("ev") != "fuzz_run":
            continue
        config = event.get("config") or {}
        key = (event.get("level", "?"), str(config.get("mode", "?")))
        cell = cells.setdefault(key, {"programs": 0, "ok": 0,
                                      "trapped": 0})
        cell["programs"] += 1
        cell["ok"] += 1 if event.get("ok") else 0
        cell["trapped"] += 1 if event.get("trap") else 0
    headers = ["level", "mode", "programs", "agreed", "trapped"]
    rows = [[level, mode, str(cell["programs"]), str(cell["ok"]),
             str(cell["trapped"])]
            for (level, mode), cell in sorted(cells.items())]
    return format_table(headers, rows, "Fuzzed programs")


def fuzz_distribution_table(events: List[dict]) -> str:
    """Outcome-status and trap-class distribution."""
    status: Dict[str, int] = {}
    traps: Dict[str, int] = {}
    for event in events:
        if event.get("ev") != "fuzz_run":
            continue
        s = event.get("status", "?")
        status[s] = status.get(s, 0) + 1
        trap = event.get("trap")
        if trap:
            traps[trap] = traps.get(trap, 0) + 1
    rows = [["status:%s" % name, str(count)]
            for name, count in sorted(status.items())]
    rows += [["trap:%s" % name, str(count)]
             for name, count in sorted(traps.items())]
    return format_table(["outcome", "programs"], rows,
                        "Outcome distribution")


def fuzz_divergence_table(events: List[dict], top: int = 10) -> str:
    """Every recorded divergence (the table everyone hopes is empty)."""
    rows = []
    for event in events:
        if event.get("ev") != "fuzz_divergence":
            continue
        rows.append([
            "%s:%s" % (event.get("level", "?"), event.get("seed", "?")),
            event.get("kind", "?"),
            event.get("engine", "?"),
            "timed" if event.get("timing") else "functional",
            ",".join(event.get("fields") or []) or "-",
            (event.get("detail") or "")[:48],
        ])
    if not rows:
        return format_table(
            ["seed", "kind", "engine", "model", "fields", "detail"],
            [["-"] * 6], "Divergences (none recorded)")
    return format_table(
        ["seed", "kind", "engine", "model", "fields", "detail"],
        rows[:top], "Divergences (%d recorded)" % len(rows))


def fuzz_shard_table(events: List[dict]) -> str:
    headers = ["level", "seeds", "programs", "divergences", "traps"]
    rows = []
    for event in events:
        if event.get("ev") != "fuzz_summary":
            continue
        shard = event.get("shard") or ["?", "?"]
        traps = event.get("traps") or {}
        rows.append([
            event.get("level", "?"),
            "%s..%s" % (shard[0], shard[1]),
            str(event.get("programs", "?")),
            str(event.get("divergences", "?")),
            ", ".join("%s=%d" % kv for kv in sorted(traps.items()))
            or "-",
        ])
    return format_table(headers, rows, "Shards")


def render_fuzz(events: List[dict], top: int = 10) -> str:
    """The full ``fuzz`` report for one fuzz JSONL stream."""
    if not any(e.get("ev", "").startswith("fuzz_") for e in events):
        return ("no fuzz events recorded (produce a stream with "
                "python -m repro.fuzz --out PATH)")
    return "\n\n".join([fuzz_overview_table(events),
                        fuzz_distribution_table(events),
                        fuzz_shard_table(events),
                        fuzz_divergence_table(events, top)])


# -- service -----------------------------------------------------------------

def service_overview_table(events: List[dict]) -> str:
    """Dispatch traffic and warm/cold split across the stream."""
    dispatches = sum(1 for e in events
                    if e.get("ev") == "job_dispatch")
    requeues = sum(1 for e in events if e.get("ev") == "job_requeue")
    warm = cold = 0
    warm_s = cold_s = 0.0
    for event in events:
        if event.get("ev") != "worker_warm":
            continue
        seconds = float(event.get("seconds") or 0.0)
        if event.get("warm"):
            warm += 1
            warm_s += seconds
        else:
            cold += 1
            cold_s += seconds
    rows = [["dispatches", str(dispatches)],
            ["requeues", str(requeues)],
            ["warm jobs", str(warm)],
            ["cold jobs", str(cold)]]
    if warm and cold:
        mean_warm = warm_s / warm
        mean_cold = cold_s / cold
        rows.append(["mean cold s", "%.4f" % mean_cold])
        rows.append(["mean warm s", "%.4f" % mean_warm])
        if mean_warm > 0:
            rows.append(["cold/warm", "%.2fx"
                         % (mean_cold / mean_warm)])
    return format_table(["metric", "value"], rows,
                        "Service traffic")


def service_worker_table(events: List[dict]) -> str:
    """Per-worker job counts and warm fractions."""
    workers: Dict[str, Dict[str, float]] = {}
    for event in events:
        if event.get("ev") != "worker_warm":
            continue
        wid = str(event.get("worker", "?"))
        cell = workers.setdefault(wid, {"jobs": 0, "warm": 0,
                                        "seconds": 0.0})
        cell["jobs"] += 1
        cell["warm"] += 1 if event.get("warm") else 0
        cell["seconds"] += float(event.get("seconds") or 0.0)
    headers = ["worker", "jobs", "warm", "warm-frac", "busy-s"]
    rows = []
    for wid, cell in sorted(workers.items(),
                            key=lambda kv: int(kv[0])
                            if kv[0].isdigit() else 0):
        rows.append([
            "w" + wid, str(int(cell["jobs"])),
            str(int(cell["warm"])),
            "%.2f" % (cell["warm"] / cell["jobs"])
            if cell["jobs"] else "-",
            "%.3f" % cell["seconds"],
        ])
    return format_table(headers, rows, "Workers")


def service_requeue_table(events: List[dict], top: int = 10) -> str:
    """Every requeue (the crash-recovery audit trail)."""
    rows = []
    for event in events:
        if event.get("ev") != "job_requeue":
            continue
        rows.append([str(event.get("job", "?")),
                     event.get("reason", "?"),
                     "w%s" % event.get("worker", "?"),
                     str(event.get("exitcode", "?")),
                     str(event.get("attempt", "?"))])
    if not rows:
        return format_table(
            ["job", "reason", "worker", "exitcode", "attempt"],
            [["-"] * 5], "Requeues (none recorded)")
    return format_table(
        ["job", "reason", "worker", "exitcode", "attempt"],
        rows[:top], "Requeues (%d recorded)" % len(rows))


def service_status_table(events: List[dict]) -> str:
    """Final counter snapshots (one per service shutdown)."""
    rows = []
    for event in events:
        if event.get("ev") != "service_status":
            continue
        counters = event.get("counters") or {}
        for name in sorted(counters):
            rows.append([name, str(counters[name])])
    if not rows:
        return ""
    return format_table(["counter", "value"], rows,
                        "Shutdown counters")


def render_service(events: List[dict], top: int = 10) -> str:
    """The full ``service`` report for one JSONL event stream."""
    vocabulary = ("job_dispatch", "job_requeue", "worker_warm",
                  "service_status")
    if not any(e.get("ev") in vocabulary for e in events):
        return ("no service events recorded (run a sweep through "
                "the service with an --obs path, or point the "
                "daemon at one with start --obs)")
    sections = [service_overview_table(events),
                service_worker_table(events),
                service_requeue_table(events, top)]
    status = service_status_table(events)
    if status:
        sections.append(status)
    return "\n\n".join(sections)


# -- diffs -------------------------------------------------------------------

def _delta(a: float, b: float) -> str:
    if not a:
        return "n/a"
    return "%+.1f%%" % (100.0 * (b - a) / a)


def diff_bench(a: dict, b: dict) -> str:
    """A/B diff of two ``BENCH_engine.json`` records."""
    sections = []
    for sweep in ("functional", "timed"):
        rows = []
        sa = (a.get("seconds") or {}).get(sweep) or {}
        sb = (b.get("seconds") or {}).get(sweep) or {}
        for engine in sorted(set(sa) | set(sb)):
            va, vb = sa.get(engine), sb.get(engine)
            rows.append([engine,
                         "%.3fs" % va if va is not None else "-",
                         "%.3fs" % vb if vb is not None else "-",
                         _delta(va, vb)
                         if None not in (va, vb) else "n/a"])
        sections.append(format_table(
            ["engine", "A", "B", "delta"], rows,
            "%s sweep seconds" % sweep))
    rows = []
    spa = (a.get("speedups") or {}).get("timed") or {}
    spb = (b.get("speedups") or {}).get("timed") or {}
    for name in sorted(set(spa) | set(spb)):
        va, vb = spa.get(name), spb.get(name)
        rows.append([name,
                     "%.2fx" % va if va is not None else "-",
                     "%.2fx" % vb if vb is not None else "-",
                     _delta(va, vb) if None not in (va, vb)
                     else "n/a"])
    sections.append(format_table(["speedup", "A", "B", "delta"],
                                 rows, "timed speedups"))
    rows = []
    ta = a.get("trace_stats") or {}
    tb = b.get("trace_stats") or {}
    for name in ("traces_formed", "mean_trace_blocks",
                 "cross_call_traces", "ret_mispredict_rate"):
        va, vb = ta.get(name), tb.get(name)
        if va is None and vb is None:
            continue
        rows.append([name, str(va), str(vb)])
    if rows:
        sections.append(format_table(["trace-stat", "A", "B"], rows,
                                     "Olden trace stats"))
    oa = (a.get("obs_overhead") or {}).get("ratio")
    ob = (b.get("obs_overhead") or {}).get("ratio")
    if oa is not None or ob is not None:
        sections.append(format_table(
            ["obs-overhead-ratio", "A", "B"],
            [["events-off/on", str(oa), str(ob)]],
            "Instrumentation overhead"))
    return "\n\n".join(sections)


def _by_label(runs: List[RunSummary]) -> Dict[str, RunSummary]:
    out: Dict[str, RunSummary] = {}
    for run in runs:
        out.setdefault(run.label, run)
    return out


def diff_events(a: List[dict], b: List[dict]) -> str:
    """A/B diff of two obs JSONL runs, matched by run label."""
    runs_a = _by_label(summarize(a))
    runs_b = _by_label(summarize(b))
    headers = ["run", "cycles A", "cycles B", "delta",
               "instrs A", "instrs B", "exec A", "exec B", "delta"]
    rows = []
    for label in sorted(set(runs_a) | set(runs_b)):
        ra, rb = runs_a.get(label), runs_b.get(label)
        if ra is None or rb is None:
            rows.append([label] + ["-"] * 8)
            continue
        ca = ra.stats.get("cycles")
        cb = rb.stats.get("cycles")
        ea = execute_net(ra.phases)
        eb = execute_net(rb.phases)
        rows.append([
            label, str(ca), str(cb),
            _delta(ca, cb) if None not in (ca, cb) else "n/a",
            str(ra.stats.get("instructions")),
            str(rb.stats.get("instructions")),
            "%.4fs" % ea, "%.4fs" % eb, _delta(ea, eb),
        ])
    return format_table(headers, rows, "A/B run diff (by label)")


def render_diff(path_a: str, path_b: str) -> str:
    kind_a, data_a = load_artifact(path_a)
    kind_b, data_b = load_artifact(path_b)
    if kind_a != kind_b:
        raise SystemExit(
            "cannot diff a %s artifact against a %s artifact"
            % (kind_a, kind_b))
    if kind_a == "bench":
        return diff_bench(data_a, data_b)
    return diff_events(data_a, data_b)


# -- CLI ---------------------------------------------------------------------

def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Render obs JSONL traces and bench-record diffs")
    parser.add_argument("command", nargs="?", default="summary",
                        help='"summary" (default), "diff", "fuzz" '
                             'or "service"; a bare path is treated '
                             'as summary PATH')
    parser.add_argument("paths", nargs="*",
                        help="one JSONL for summary/fuzz/service; "
                             "two artifacts for diff")
    parser.add_argument("--top", type=int, default=10,
                        help="rows in the hot-trace / divergence / "
                             "requeue tables")
    args = parser.parse_args(argv)

    command = args.command
    paths = list(args.paths)
    if command not in ("summary", "diff", "fuzz", "service"):
        paths.insert(0, command)  # bare-path shorthand
        command = "summary"
    if command in ("summary", "fuzz", "service"):
        if len(paths) != 1:
            parser.error("%s takes exactly one JSONL path" % command)
        kind, data = load_artifact(paths[0])
        if kind != "events":
            parser.error("%s is a bench record; %s wants an "
                         "obs JSONL (use diff for bench records)"
                         % (paths[0], command))
        render = {"fuzz": render_fuzz,
                  "service": render_service}.get(command,
                                                 render_summary)
        print(render(data, top=args.top))
        return 0
    if len(paths) != 2:
        parser.error("diff takes exactly two artifact paths")
    print(render_diff(paths[0], paths[1]))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
