"""Unit tests for the basic-block discovery pass and fusion engine."""

import pytest

from repro.isa import assemble
from repro.machine import CPU, MachineConfig
from repro.machine.blocks import (
    MAX_BLOCK_LEN,
    BasicBlock,
    build_cfg,
    find_leaders,
)


def blocks_by_start(program):
    return {block.start: block for block in build_cfg(program)}


class TestLeaderDiscovery:
    def test_straight_line_has_single_leader(self):
        program = assemble("""
        main:
            mov r1, 1
            add r1, r1, 2
            halt r1
        """)
        assert find_leaders(program) == {0}
        [block] = build_cfg(program)
        assert (block.start, block.length) == (0, 3)
        assert block.succs == ()

    def test_branch_targets_and_fallthroughs_are_leaders(self):
        program = assemble("""
        main:
            mov r1, 5
        loop:
            sub r1, r1, 1
            bnez r1, loop
            mov r2, 7
            halt r2
        """)
        # leaders: entry, loop target, fallthrough after bnez
        assert find_leaders(program) == {0, 1, 3}
        blocks = blocks_by_start(program)
        assert blocks[0].length == 1          # mov feeds the loop head
        assert blocks[1].length == 2          # sub + bnez
        assert set(blocks[1].succs) == {1, 3}  # taken + fallthrough
        assert blocks[3].length == 2          # mov + halt

    def test_self_loop_is_its_own_block(self):
        program = assemble("main:\n  jmp main\n")
        assert find_leaders(program) == {0}
        [block] = build_cfg(program)
        assert (block.start, block.length) == (0, 1)
        assert block.succs == (0,)

    def test_call_creates_target_and_return_leaders(self):
        program = assemble("""
        main:
            call fn
            halt 0
        fn:
            mov r0, 3
            ret
        """)
        assert find_leaders(program) == {0, 1, 2}
        blocks = blocks_by_start(program)
        assert blocks[0].succs == (2,)        # call edge only
        assert blocks[2].length == 2          # mov + ret
        assert blocks[2].succs == ()          # indirect return

    def test_setcode_immediate_is_a_leader(self):
        program = assemble("""
        main:
            setcode r1, fn
            callr r1
            halt 0
        fn:
            mov r0, 1
            ret
        """)
        leaders = find_leaders(program)
        assert 3 in leaders                   # the setcode target
        assert 2 in leaders                   # callr return point

    def test_branchy_program_blocks_partition_the_code(self):
        program = assemble("""
        main:
            mov r1, 10
            mov r2, 0
        head:
            beqz r1, done
            add r2, r2, r1
            sub r1, r1, 1
            jmp head
        done:
            halt r2
        """)
        blocks = build_cfg(program)
        covered = sorted(pc for block in blocks
                         for pc in range(block.start, block.end))
        assert covered == list(range(len(program.instrs)))

    def test_long_run_is_capped_and_chained(self):
        body = "\n".join("  add r1, r1, 1"
                         for _ in range(MAX_BLOCK_LEN + 10))
        program = assemble("main:\n%s\n  halt r1\n" % body)
        blocks = build_cfg(program)
        assert len(blocks) == 2
        first, second = blocks
        assert first.length == MAX_BLOCK_LEN
        assert first.succs == (second.start,)
        assert second.start == MAX_BLOCK_LEN

    def test_basicblock_repr_and_end(self):
        block = BasicBlock(4, 3, (9,))
        assert block.end == 7
        assert "4..6" in repr(block)


class TestBlockExecution:
    def test_computed_entry_into_block_middle(self):
        """A callr into a non-leader pc falls back to single-stepping."""
        program = assemble("""
        main:
            setcode r1, target
            add r1, r1, 1
            callr r1
        target:
            mov r0, 7
            add r0, r0, 1
            add r0, r0, 1
            halt r0
        """)
        results = {}
        for engine in ("legacy", "blocks"):
            cpu = CPU(program, MachineConfig.plain(
                timing=False, engine=engine))
            result = cpu.run()
            results[engine] = (result.exit_code, result.instructions,
                               cpu.pc)
        assert results["blocks"] == results["legacy"]
        # entry skipped the mov, so r0 counts up from its initial 0
        assert results["blocks"][0] == 2

    def test_functional_loop_result(self):
        program = assemble("""
        main:
            mov r1, 0
            mov r2, 100
        loop:
            add r1, r1, 3
            sub r2, r2, 1
            bnez r2, loop
            halt r1
        """)
        cpu = CPU(program, MachineConfig.plain(timing=False,
                                               engine="blocks"))
        result = cpu.run()
        assert result.exit_code == 300
        assert result.instructions == 2 + 3 * 100 + 1

    def test_blocks_engine_uses_fast_memory_system(self):
        from repro.caches.fast import FastMemorySystem
        program = assemble("main:\n  halt 0\n")
        cpu = CPU(program, MachineConfig.hardbound(engine="blocks",
                                                   timing=True))
        assert isinstance(cpu.memsys, FastMemorySystem)
        cpu_decoded = CPU(program, MachineConfig.hardbound(
            engine="decoded", timing=True))
        assert not isinstance(cpu_decoded.memsys, FastMemorySystem)

    def test_engine_name_is_validated(self):
        with pytest.raises(ValueError):
            MachineConfig(engine="warp")


class TestFusedMemoryTemplates:
    """The PR 3 memory templates: word load/store bodies generated
    into the block closures (segment check + flat-arena access + tag
    probe + timing charge), bit-identical to the other engines."""

    ENGINES = ("legacy", "decoded", "blocks")

    def run_all(self, program, mode_fn, timing):
        results = {}
        for engine in self.ENGINES:
            cpu = CPU(program, mode_fn(timing=timing, engine=engine))
            r = cpu.run()
            results[engine] = (r.exit_code, r.instructions, r.uops,
                               r.stall_cycles, r.cycles,
                               cpu.memory.nonzero_pages())
        assert results["blocks"] == results["legacy"]
        assert results["decoded"] == results["legacy"]
        return results["blocks"]

    @pytest.mark.parametrize("timing", (False, True))
    def test_indexed_forms_fuse_identically(self, timing):
        """[base + index*scale + disp] loads and stores in a block."""
        program = assemble("""
        main:
            mov r1, 4096
            sbrk r1
            setbound r3, r1, 64
            mov r4, 2
            mov r5, 777
            store [r3 + r4*4 + 8], r5
            load r6, [r3 + r4*4 + 8]
            halt r6
        """)
        for mode_fn in (MachineConfig.hardbound, MachineConfig.plain):
            out = self.run_all(program, mode_fn, timing)
            assert out[0] == 777

    @pytest.mark.parametrize("timing", (False, True))
    def test_si_bounds_trap_mid_template(self, timing):
        """A BoundsError raised inside a fused si-form load keeps the
        per-instruction pc/icount attribution."""
        from repro.machine import BoundsError
        program = assemble("""
        main:
            mov r1, 4096
            sbrk r1
            setbound r3, r1, 16
            mov r4, 5
            load r6, [r3 + r4*4]
            halt 0
        """)
        traps = {}
        for engine in self.ENGINES:
            cpu = CPU(program, MachineConfig.hardbound(
                timing=timing, engine=engine))
            with pytest.raises(BoundsError) as exc:
                cpu.run()
            traps[engine] = (str(exc.value), exc.value.pc,
                             cpu.icount, cpu.pc)
        assert traps["blocks"] == traps["legacy"]
        assert traps["decoded"] == traps["legacy"]

    @pytest.mark.parametrize("timing", (False, True))
    def test_unaligned_word_spills_identically(self, timing):
        """Unaligned fused words take the raw_* spill path."""
        program = assemble("""
        main:
            mov r1, 4096
            sbrk r1
            setbound r3, r1, 64
            add r3, r3, 1
            mov r5, 31337
            store [r3 + 4], r5
            load r6, [r3 + 4]
            halt r6
        """)
        out = self.run_all(program, MachineConfig.hardbound, timing)
        assert out[0] == 31337

    def test_memory_fault_mid_block_attribution(self):
        """A MemoryFault from the fused segment check points at the
        faulting instruction, not the block end."""
        from repro.machine import MemoryFault
        program = assemble("""
        main:
            mov r1, 0x2000000
            mov r2, 1
            mov r3, 2
            load r4, [r1]
            mov r5, 3
            halt 0
        """)
        traps = {}
        for engine in self.ENGINES:
            cpu = CPU(program, MachineConfig.plain(
                timing=False, engine=engine))
            with pytest.raises(MemoryFault) as exc:
                cpu.run()
            traps[engine] = (str(exc.value), exc.value.pc,
                             cpu.icount, cpu.pc)
        assert traps["blocks"] == traps["legacy"]
        assert traps["decoded"] == traps["legacy"]

    def test_memory_templates_emitted(self):
        """The hot word shapes really fuse (no silent fallback)."""
        import repro.machine.blocks as blocks_mod
        program = assemble("""
        main:
            mov r1, 4096
            sbrk r1
            setbound r3, r1, 64
            mov r5, 5
            store [r3], r5
            load r6, [r3]
            halt r6
        """)
        CPU(program, MachineConfig.hardbound(
            engine="blocks", timing=True)).run()
        shapes = {shape for sig in blocks_mod._fuse_cache
                  for shape in sig}
        assert any(shape.startswith("ldhb_") for shape in shapes)
        assert any(shape.startswith("sthb_") for shape in shapes)
