"""Register file with base/bound "sidecar" metadata.

The architected state of every register is a ``{value; base; bound}``
triple (Section 3.1).  ``base == bound == 0`` marks a non-pointer.  The
sidecars live in parallel lists for speed; the tuple view is for tests
and debugging.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.isa.opcodes import NUM_REGS, reg_name
from repro.layout import MASK32


class RegisterFile:
    """Sixteen general registers, each with base/bound sidecars."""

    __slots__ = ("value", "base", "bound")

    def __init__(self):
        self.value: List[int] = [0] * NUM_REGS
        self.base: List[int] = [0] * NUM_REGS
        self.bound: List[int] = [0] * NUM_REGS

    def set(self, idx: int, value: int, base: int = 0,
            bound: int = 0) -> None:
        """Write the full triple of register ``idx``."""
        self.value[idx] = value & MASK32
        self.base[idx] = base & MASK32
        self.bound[idx] = bound & MASK32

    def get(self, idx: int) -> Tuple[int, int, int]:
        """Read the full triple of register ``idx``."""
        return self.value[idx], self.base[idx], self.bound[idx]

    def is_pointer(self, idx: int) -> bool:
        """A register is a pointer iff its metadata is not {0; 0}."""
        return bool(self.base[idx] or self.bound[idx])

    def copy_meta(self, dst: int, src: int) -> None:
        """Propagate metadata from ``src`` to ``dst`` (value untouched)."""
        self.base[dst] = self.base[src]
        self.bound[dst] = self.bound[src]

    def clear_meta(self, dst: int) -> None:
        """Mark ``dst`` as a non-pointer."""
        self.base[dst] = 0
        self.bound[dst] = 0

    def dump(self) -> str:
        """Multi-line register dump for debugging."""
        lines = []
        for i in range(NUM_REGS):
            lines.append("%-3s = 0x%08x  [base=0x%08x bound=0x%08x]"
                         % (reg_name(i), self.value[i],
                            self.base[i], self.bound[i]))
        return "\n".join(lines)
