"""The stable public surface must not silently shrink.

These lists are the contract documented in docs/SERVICE.md and the
package docstrings: removing (or renaming) any of these names is an
API break and must be a deliberate, test-updating decision.
"""

import repro.harness
import repro.service

HARNESS_SURFACE = (
    "run_workload",
    "run_benchmark_matrix",
    "run_benchmark_matrix_parallel",
    "map_jobs",
    "ResultCache",
    "SweepSpec",
    "run_sweep",
    "BenchmarkRun",
    "ViolationCase",
    "generate_corpus",
    "run_corpus",
    "CorpusResult",
    "figure5_table",
    "figure6_table",
    "figure7_table",
    "check_uop_ablation_table",
    "format_table",
)

SERVICE_SURFACE = (
    "Client",
    "connect",
    "Service",
    "JobSpec",
    "ResultStore",
    "ServiceError",
    "ServiceClosed",
    "JobFailed",
    "JobTimeout",
)


class TestPublicSurface:
    def test_harness_exports_do_not_shrink(self):
        missing = set(HARNESS_SURFACE) - set(repro.harness.__all__)
        assert not missing, \
            "repro.harness.__all__ lost: %s" % sorted(missing)

    def test_service_exports_do_not_shrink(self):
        missing = set(SERVICE_SURFACE) - set(repro.service.__all__)
        assert not missing, \
            "repro.service.__all__ lost: %s" % sorted(missing)

    def test_every_export_resolves(self):
        for module in (repro.harness, repro.service):
            for name in module.__all__:
                assert getattr(module, name, None) is not None, \
                    "%s.%s exported but unresolvable" \
                    % (module.__name__, name)

    def test_deprecated_sweeps_still_importable(self):
        from repro.harness.parallel import (
            sweep_ccured_safe_fraction_parallel,
            sweep_objtable_elision_parallel,
            sweep_tag_cache_parallel,
        )
        for fn in (sweep_ccured_safe_fraction_parallel,
                   sweep_objtable_elision_parallel,
                   sweep_tag_cache_parallel):
            assert callable(fn)
