"""Execution tracer."""

import pytest

from repro.isa import assemble
from repro.layout import HEAP_BASE
from repro.machine import BoundsError, CPU, MachineConfig
from repro.machine.trace import Tracer

CFG = MachineConfig.hardbound(timing=False)


def traced_cpu(source, limit=100):
    cpu = CPU(assemble(source), CFG)
    tracer = Tracer(cpu, limit=limit)
    return cpu, tracer


def test_records_every_instruction():
    cpu, tracer = traced_cpu("""
    main:
        mov r1, 1
        mov r2, 2
        add r3, r1, r2
        halt 0
    """)
    cpu.run()
    assert tracer.total == 4
    assert [e.text for e in tracer.entries] == [
        "mov r1, 1", "mov r2, 2", "add r3, r1, r2", "halt 0"]


def test_destination_metadata_rendered():
    cpu, tracer = traced_cpu("""
    main:
        mov r1, %d
        setbound r2, r1, 8
        halt 0
    """ % HEAP_BASE)
    cpu.run()
    entry = tracer.entries[1]
    assert "r2 = {0x01000000; 0x01000000; 0x01000008}" == entry.dest


def test_limit_keeps_tail():
    cpu, tracer = traced_cpu("""
    main:
        mov r1, 50
    loop:
        sub r1, r1, 1
        bnez r1, loop
        halt 0
    """, limit=10)
    cpu.run()
    assert len(tracer.entries) == 10
    assert tracer.total == 1 + 50 * 2 + 1
    assert tracer.entries[-1].text == "halt 0"


def test_trace_survives_trap():
    cpu, tracer = traced_cpu("""
    main:
        mov r1, 16
        sbrk r1
        mov r1, %d
        setbound r2, r1, 4
        load r3, [r2 + 8]
        halt 0
    """ % HEAP_BASE)
    with pytest.raises(BoundsError):
        cpu.run()
    # the faulting instruction itself is the last trace entry
    assert tracer.entries[-1].text == "load r3, [r2 + 8]"


def test_format_alignment():
    cpu, tracer = traced_cpu("main:\n  mov r1, 7\n  halt 0\n")
    cpu.run()
    text = tracer.format()
    assert "mov r1, 7" in text
    assert text.splitlines()[0].startswith("     0:")


def test_pointer_writes_filter():
    cpu, tracer = traced_cpu("""
    main:
        mov r1, %d
        setbound r2, r1, 8
        mov r3, 5
        halt 0
    """ % HEAP_BASE)
    cpu.run()
    writes = tracer.pointer_writes()
    assert len(writes) == 1
    assert writes[0].text.startswith("setbound")
