"""The differential oracle: outcome capture, diffing, invariants."""

import dataclasses

import pytest

from repro.fuzz.oracle import (
    Divergence,
    Outcome,
    check_invariants,
    config_for_seed,
    diff_engines,
    diff_minic,
    fuzz_one,
    run_once,
)
from repro.isa.assembler import assemble
from repro.machine.config import MachineConfig, SafetyMode


def outcome_of(asm, **config_kw):
    config_kw.setdefault("engine", "legacy")
    config_kw.setdefault("timing", False)
    return run_once(assemble(asm), MachineConfig(**config_kw))


class TestRunOnce:
    def test_exit_outcome(self):
        outcome = outcome_of("main:\n    mov r1, 7\n    print r1\n"
                             "    halt r1\n")
        assert outcome.status == "exit"
        assert outcome.exit_code == 7
        assert outcome.output == "7\n"
        assert outcome.image is not None
        assert outcome.trap is None

    def test_trap_outcome(self):
        outcome = outcome_of(
            "main:\n    mov r1, 64\n    sbrk r1\n"
            "    setbound r2, r1, 8\n    load r3, [r2 + 8]\n"
            "    halt r3\n",
            mode=SafetyMode.FULL, encoding="intern11")
        assert outcome.status == "trap"
        assert outcome.trap[0] == "BoundsError"
        assert outcome.trap[2] is not None     # faulting pc
        assert outcome.exit_code is None

    def test_limit_outcome(self):
        outcome = outcome_of("main:\nL:\n    jmp L\n",
                             max_instructions=100)
        assert outcome.status == "limit"
        assert outcome.icount >= 100


class TestOutcomeDiff:
    def test_identical_outcomes_have_no_diff(self):
        a = outcome_of("main:\n    mov r1, 3\n    halt r1\n")
        b = outcome_of("main:\n    mov r1, 3\n    halt r1\n")
        assert a.diff_fields(b) == []

    def test_differing_fields_are_named(self):
        a = outcome_of("main:\n    mov r1, 3\n    halt r1\n")
        b = outcome_of("main:\n    mov r1, 4\n    halt r1\n")
        fields = a.diff_fields(b)
        assert "exit_code" in fields

    def test_observable_filters_stack_pages(self):
        outcome = outcome_of("main:\n    mov r1, 3\n    halt r1\n")
        status, exit_code, output, trap_kind, pages = \
            outcome.observable()
        assert (status, exit_code, trap_kind) == ("exit", 3, None)
        assert pages is not None


class TestDiffEngines:
    def test_clean_program_has_no_divergence(self):
        program = assemble("main:\n    mov r1, 5\n    mov r2, 3\n"
                           "    add r1, r1, r2\n    print r1\n"
                           "    halt r1\n")
        assert diff_engines(program) == []

    def test_trap_agreement_across_engines(self):
        program = assemble(
            "main:\n    mov r1, 64\n    sbrk r1\n"
            "    setbound r2, r1, 8\n    load r3, [r2 + 16]\n"
            "    halt r3\n")
        assert diff_engines(program, {
            "mode": SafetyMode.FULL, "encoding": "extern4"}) == []

    def test_functional_only_timing_subset(self):
        program = assemble("main:\n    mov r1, 1\n    halt r1\n")
        assert diff_engines(program, timings=(False,)) == []


class TestInvariants:
    def test_fallback_invariant_flags_memory_ops(self):
        outcome = Outcome(status="exit", output="", icount=1, pc=1,
                          engine_stats={"closure_fallback_ops":
                                        {"load": 3, "print": 1}})
        # schema check fails (not a full superblocks record) AND the
        # memory-path fallback is flagged
        found = check_invariants("superblocks", outcome, False)
        assert any("closure_fallback_ops" in d.fields
                   for d in found)

    def test_temporal_runs_exempt_from_fallback_invariant(self):
        outcome = Outcome(status="exit", output="", icount=1, pc=1,
                          engine_stats={"closure_fallback_ops":
                                        {"load": 3}})
        found = check_invariants("superblocks", outcome, False,
                                 temporal=True)
        assert not any(d.fields == ["closure_fallback_ops"]
                       for d in found)

    def test_non_exit_outcomes_skip_invariants(self):
        outcome = Outcome(status="trap", output="", icount=1, pc=1)
        assert check_invariants("superblocks", outcome, False) == []


class TestDiffMinic:
    def test_clean_source(self):
        source = ("int main() {\n"
                  "    int *p = (int*)malloc(4 * sizeof(int));\n"
                  "    p[1] = 5;\n"
                  "    print(p[1]);\n"
                  "    return p[1];\n"
                  "}\n")
        assert diff_minic(source, {
            "mode": SafetyMode.FULL, "encoding": "intern11"},
            timings=(False,)) == []


class TestFuzzOne:
    def test_isa_seed_verdict(self):
        result = fuzz_one(1, "isa", timings=(False,))
        assert result.ok
        assert result.level == "isa"
        record = result.as_dict()
        assert record["seed"] == 1
        assert isinstance(record["config"]["mode"], str)

    def test_minic_seed_verdict(self):
        result = fuzz_one(0, "minic", timings=(False,))
        assert result.ok
        assert result.status == "exit"

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            fuzz_one(0, "fortran")

    def test_config_for_seed_is_deterministic(self):
        assert config_for_seed(9, "isa") == config_for_seed(9, "isa")
        draws = {str(config_for_seed(seed, "isa"))
                 for seed in range(40)}
        assert len(draws) >= 4   # modes and encodings both vary


def test_divergence_serializes():
    d = Divergence("engine", "blocks", True, ["cycles"], "detail")
    assert dataclasses.asdict(d)["engine"] == "blocks"
    assert "blocks" in str(d)
