"""JK/RL/DA object-table baseline (Section 2.2).

The object-lookup approach keeps every allocated object in a splay
tree and validates each *pointer arithmetic* result against the
object containing the source pointer (Jones & Kelly, as optimized by
Ruwase-Lam and Dhurjati-Adve).  Dereferences themselves need only a
cheap range compare against the cached object.

We attach this model as a CPU observer: allocation events
(``setbound`` executions from ``malloc`` and the compiler) register
objects; bounds-propagating arithmetic charges a splay lookup whose
cost is driven by the *real* tree depth; dereferences charge a
constant compare.  The resulting extra µops convert a plain-core run
into the JK/RL/DA row of Figure 7.

Cost constants (µops per event) reflect the published
implementations: a splay lookup is a function call (~call/return +
compare-and-follow per node visited); table registration happens once
per object.  The paper's JK/RL/DA column also benefits from automatic
pool allocation and static elision of non-array objects, which we
model with ``ELIDE_FRACTION`` — the fraction of arithmetic checks
their compiler removes statically (Dhurjati & Adve report eliding the
large majority of scalar-object tracking).
"""

from __future__ import annotations

from repro.baselines.splay import SplayTree

#: µops per checked pointer-arithmetic event, fixed part (call, setup)
ARITH_FIXED_UOPS = 6
#: µops per splay node visited during the lookup
ARITH_PER_NODE_UOPS = 3
#: µops to register one object in the table
INSERT_FIXED_UOPS = 10
#: µops per dereference (range compare against cached bounds)
DEREF_UOPS = 0   # JK-style checks happen at arithmetic, not deref
#: fraction of arithmetic checks elided by DA's static analysis and
#: automatic pool allocation (the published baseline includes both;
#: several Olden rows sit at ~1.0x, implying near-total elision for
#: tree-only pointer arithmetic)
ELIDE_FRACTION = 0.93


class ObjectTableModel:
    """CPU observer implementing the object-table cost model."""

    def __init__(self, elide_fraction: float = ELIDE_FRACTION):
        self.tree = SplayTree()
        self.elide_fraction = elide_fraction
        self.extra_uops = 0
        self.arith_events = 0
        self.alloc_events = 0
        self.mem_events = 0
        self._elide_accum = 0.0

    # -- CPU observer interface ----------------------------------------------

    def on_setbound(self, value: int, size: int) -> None:
        """Register an object — once.

        The object table registers each object at its allocation site
        (malloc, or function entry for stack objects); the compiler's
        repeated ``setbound`` at decay sites does not re-register.
        """
        node, touched = self.tree.lookup(value)
        if node is not None and node.start == value:
            self.extra_uops += ARITH_PER_NODE_UOPS * min(touched, 2)
            return
        self.alloc_events += 1
        touched = self.tree.insert(value, value + max(size, 1))
        self.extra_uops += INSERT_FIXED_UOPS + \
            ARITH_PER_NODE_UOPS * touched

    def on_pointer_arith(self, value: int) -> None:
        self.arith_events += 1
        # deterministic fractional elision of statically-safe checks
        self._elide_accum += self.elide_fraction
        if self._elide_accum >= 1.0:
            self._elide_accum -= 1.0
            return
        _node, touched = self.tree.lookup(value)
        self.extra_uops += ARITH_FIXED_UOPS + \
            ARITH_PER_NODE_UOPS * touched

    def on_mem(self, ea: int, size: int, write: bool) -> None:
        self.mem_events += 1
        self.extra_uops += DEREF_UOPS

    # -- reporting ------------------------------------------------------------

    def overhead_vs(self, base_uops: int) -> float:
        """Relative runtime with the model's µops added."""
        if not base_uops:
            return 1.0
        return (base_uops + self.extra_uops) / base_uops
