"""Virtual address-space layout shared by the whole simulator.

The layout mirrors Section 4.1 of the paper: program data lives in the
low half of the 32-bit space, the base/bound shadow space sits at a
constant offset (``shadow(a) = SHADOW_SPACE_BASE + a*2``), and the tag
metadata spaces hold 1 bit (or one nibble) per 32-bit word.  Keeping
all program-visible addresses below ``2**31`` lets signed comparisons
in compiled code behave like C on a conventional 32-bit target.
"""

from __future__ import annotations

WORD = 4
MASK32 = 0xFFFFFFFF
MAXINT = 0xFFFFFFFF
PAGE_SIZE = 4096
PAGE_SHIFT = 12

#: Addresses below this trap (null-pointer dereference protection).
NULL_GUARD = 0x0000_1000

#: Start of the initialized globals segment (.data).
GLOBAL_BASE = 0x0001_0000

#: Start of the heap; ``sbrk`` grows it upward.
HEAP_BASE = 0x0100_0000

#: Stack top; the stack grows downward from here.
STACK_TOP = 0x0800_0000

#: Default stack reservation (for bounding ``sp`` at program start).
STACK_SIZE = 0x0010_0000

#: Base of the interleaved base/bound shadow space (Section 4.1):
#: ``base(a)  = SHADOW_SPACE_BASE + a*2``
#: ``bound(a) = SHADOW_SPACE_BASE + a*2 + 4``
SHADOW_SPACE_BASE = 0x4000_0000

#: 1-bit-per-word pointer/non-pointer tag space (Section 4.2).
TAG1_BASE = 0x8000_0000

#: 4-bit-per-word external compressed tag space (Section 4.3).
TAG4_BASE = 0x9000_0000

#: Validity bitmap used only by the red-zone tripwire baseline.
REDZONE_BITMAP_BASE = 0xA000_0000

#: Disjoint metadata table used only by the software fat-pointer
#: (CCured/SoftBound-style) baseline; laid out like the hardware shadow
#: space but accessed by *explicit* instructions.
SOFT_SHADOW_BASE = 0xB000_0000


def shadow_base_addr(addr: int) -> int:
    """Shadow address holding the *base* word for data word ``addr``."""
    return SHADOW_SPACE_BASE + (addr & ~(WORD - 1)) * 2


def shadow_bound_addr(addr: int) -> int:
    """Shadow address holding the *bound* word for data word ``addr``."""
    return shadow_base_addr(addr) + WORD


#: one tag bit per 4-byte word: one tag byte covers 32 bytes of data
TAG1_SHIFT = 5

#: one tag nibble per word: one tag byte covers 8 bytes of data
TAG4_SHIFT = 3


def tag1_addr(addr: int) -> int:
    """Byte address in the 1-bit tag space covering data word ``addr``.

    One tag bit per 4-byte word means one tag byte covers 32 bytes of
    data (the paper's "1 bit per 32-bit word is 3%" footprint).
    """
    return TAG1_BASE + (addr >> TAG1_SHIFT)


def tag4_addr(addr: int) -> int:
    """Byte address in the 4-bit tag space covering data word ``addr``.

    One nibble per word: one tag byte covers 8 bytes of data.
    """
    return TAG4_BASE + (addr >> TAG4_SHIFT)


def page_of(addr: int) -> int:
    """Page number containing ``addr``."""
    return addr >> PAGE_SHIFT


def to_signed(value: int) -> int:
    """Interpret a 32-bit unsigned value as signed."""
    value &= MASK32
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


def to_unsigned(value: int) -> int:
    """Wrap an arbitrary Python int to 32-bit unsigned."""
    return value & MASK32
